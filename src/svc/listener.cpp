#include "svc/listener.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <iterator>
#include <utility>

#include "obs/registry.h"
#include "obs/trace.h"

namespace helcfl::svc {

namespace {

/// Message type of an encoded frame without a full decode: u32 at byte 8
/// (magic | version | TYPE | size | checksum — svc/frame.h).
std::uint32_t frame_type_of(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kFrameHeaderBytes) return 0;
  return static_cast<std::uint32_t>(bytes[8]) |
         (static_cast<std::uint32_t>(bytes[9]) << 8) |
         (static_cast<std::uint32_t>(bytes[10]) << 16) |
         (static_cast<std::uint32_t>(bytes[11]) << 24);
}

/// First u64 of the payload (device_id for acks) without a full decode.
std::uint64_t payload_u64_of(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kFrameHeaderBytes + 8) return UINT64_MAX;
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | bytes[kFrameHeaderBytes + static_cast<std::size_t>(i)];
  }
  return value;
}

void drain_pipe(int fd) {
  std::uint8_t buf[256];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
}

}  // namespace

void ServerOptions::validate() const {
  if (ingress_threads == 0) {
    throw ServiceError("ServerOptions: ingress_threads must be >= 1");
  }
  if (ingress_queue_capacity == 0) {
    throw ServiceError("ServerOptions: ingress_queue_capacity must be >= 1");
  }
  if (max_conn_output_bytes < kFrameHeaderBytes) {
    throw ServiceError(
        "ServerOptions: max_conn_output_bytes cannot hold a frame header");
  }
  egress_chaos.validate();
}

SocketServer::SocketServer(SchedulerService& service, const Endpoint& endpoint,
                           const ServerOptions& options,
                           obs::Instruments instruments)
    : service_(service),
      requested_endpoint_(endpoint),
      bound_endpoint_(endpoint),
      options_(options),
      instruments_(instruments) {
  options_.validate();
  if (options_.egress_chaos.any_fault_possible()) {
    egress_chaos_ = WireFaultInjector(options_.egress_chaos,
                                      util::Rng(options_.egress_chaos_seed));
    chaos_enabled_ = true;
  }
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::count(std::string_view name, std::uint64_t delta) {
  if (instruments_.registry != nullptr) instruments_.registry->add(name, delta);
}

void SocketServer::trace_conn(std::uint64_t conn_id, std::string_view kind) {
  obs::Tracer* tracer = instruments_.tracer;
  if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
    tracer->emit(obs::TraceLevel::kRound, "svc_conn",
                 {{"conn", conn_id}, {"kind", kind}});
  }
}

std::uint64_t SocketServer::current_tick() const {
  if (options_.tick_source) return options_.tick_source();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

void SocketServer::start() {
  if (started_) {
    throw ServiceError("SocketServer: start() called twice");
  }
  started_ = true;
  listen_socket_ = Socket::listen_on(requested_endpoint_, options_.listen_backlog);
  bound_endpoint_ = requested_endpoint_.kind == Endpoint::Kind::kTcp
                        ? listen_socket_.local_endpoint()
                        : requested_endpoint_;
  start_time_ = std::chrono::steady_clock::now();

  readers_.clear();
  for (std::size_t i = 0; i < options_.ingress_threads; ++i) {
    auto reader = std::make_unique<Reader>();
    int fds[2];
    if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) < 0) {
      throw TransportError("pipe2 failed for reader wakeup");
    }
    reader->wake_read_fd = fds[0];
    reader->wake_write_fd = fds[1];
    readers_.push_back(std::move(reader));
  }

  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  service_stop_.store(false, std::memory_order_release);

  for (std::size_t i = 0; i < readers_.size(); ++i) {
    readers_[i]->thread = std::thread([this, i] { reader_loop(i); });
  }
  service_thread_ = std::thread([this] { service_loop(); });
  acceptor_thread_ = std::thread([this] { acceptor_loop(); });
}

void SocketServer::stop() {
  if (!started_ || !running_.load(std::memory_order_acquire)) return;

  // Phase 1: no new connections, no new ingress.  Readers drain their
  // sockets' pending bytes on the way out (they exit at loop top).
  stopping_.store(true, std::memory_order_release);
  for (auto& reader : readers_) wake_reader(*reader);
  if (acceptor_thread_.joinable()) acceptor_thread_.join();
  for (auto& reader : readers_) {
    if (reader->thread.joinable()) reader->thread.join();
  }

  // Phase 2: the service thread consumes everything already queued, runs
  // one final poll, and routes the last outbox.
  service_stop_.store(true, std::memory_order_release);
  ingress_cv_.notify_all();
  if (service_thread_.joinable()) service_thread_.join();

  // Phase 3: flush whatever output is still buffered, then close.
  drain_output();

  {
    std::lock_guard lock(conns_mutex_);
    for (auto& [id, conn] : conns_) {
      std::lock_guard conn_lock(conn->mutex);
      if (!conn->closed.load(std::memory_order_acquire)) {
        conn->closed.store(true, std::memory_order_release);
        stats_.conns_closed.fetch_add(1, std::memory_order_relaxed);
        count("svc.conn_closed");
      }
      conn->framed.socket().close();
    }
    conns_.clear();
  }
  listen_socket_.close();
  for (auto& reader : readers_) {
    if (reader->wake_read_fd >= 0) ::close(reader->wake_read_fd);
    if (reader->wake_write_fd >= 0) ::close(reader->wake_write_fd);
    reader->wake_read_fd = reader->wake_write_fd = -1;
  }
  running_.store(false, std::memory_order_release);
}

void SocketServer::drain_output() {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  std::vector<ConnPtr> open;
  {
    std::lock_guard lock(conns_mutex_);
    for (auto& [id, conn] : conns_) {
      if (!conn->closed.load(std::memory_order_acquire)) open.push_back(conn);
    }
  }
  for (const ConnPtr& conn : open) {
    std::lock_guard conn_lock(conn->mutex);
    while (conn->framed.want_write() &&
           std::chrono::steady_clock::now() < deadline) {
      const FramedConn::IoStatus status = conn->framed.flush();
      if (status != FramedConn::IoStatus::kOk) break;
      if (!conn->framed.want_write()) break;
      pollfd pfd{conn->framed.socket().fd(), POLLOUT, 0};
      (void)::poll(&pfd, 1, /*timeout_ms=*/10);
    }
  }
}

void SocketServer::wake_reader(Reader& reader) {
  const std::uint8_t byte = 1;
  if (reader.wake_write_fd >= 0) {
    // A full pipe already guarantees a pending wakeup.
    (void)!::write(reader.wake_write_fd, &byte, 1);
  }
}

void SocketServer::acceptor_loop() {
  std::size_t next_reader = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_socket_.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    for (;;) {
      std::optional<Socket> accepted;
      try {
        accepted = listen_socket_.accept_one();
      } catch (const TransportError&) {
        break;  // transient accept failure; retry on the next poll
      }
      if (!accepted.has_value()) break;
      if (options_.conn_send_buffer_bytes > 0) {
        try {
          accepted->set_send_buffer(options_.conn_send_buffer_bytes);
        } catch (const TransportError&) {
        }
      }
      auto conn = std::make_shared<Conn>();
      conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
      conn->owner = next_reader;
      conn->framed = FramedConn(
          std::move(*accepted),
          FramedConn::Options{.max_output_bytes = options_.max_conn_output_bytes,
                              .read_chunk_bytes = std::size_t{64} << 10});
      {
        std::lock_guard lock(conns_mutex_);
        conns_.emplace(conn->id, conn);
      }
      Reader& reader = *readers_[next_reader];
      {
        std::lock_guard lock(reader.mutex);
        reader.conns.push_back(conn);
      }
      wake_reader(reader);
      next_reader = (next_reader + 1) % readers_.size();
      stats_.conns_accepted.fetch_add(1, std::memory_order_relaxed);
      count("svc.conn_accepted");
      trace_conn(conn->id, "accept");
    }
  }
}

void SocketServer::reader_loop(std::size_t index) {
  Reader& reader = *readers_[index];
  std::vector<pollfd> pfds;
  std::vector<ConnPtr> polled;
  std::vector<Frame> frames;

  while (!stopping_.load(std::memory_order_acquire)) {
    // Reap connections closed since the last lap (by this thread on I/O
    // failure or by the service thread on output-backlog overflow).
    std::vector<ConnPtr> reaped;
    {
      std::lock_guard lock(reader.mutex);
      auto it = std::partition(
          reader.conns.begin(), reader.conns.end(), [](const ConnPtr& c) {
            return !c->closed.load(std::memory_order_acquire);
          });
      reaped.assign(it, reader.conns.end());
      reader.conns.erase(it, reader.conns.end());
    }
    for (const ConnPtr& conn : reaped) {
      {
        std::lock_guard conn_lock(conn->mutex);
        conn->framed.socket().close();
      }
      {
        std::lock_guard lock(conns_mutex_);
        conns_.erase(conn->id);
      }
      stats_.conns_closed.fetch_add(1, std::memory_order_relaxed);
      count("svc.conn_closed");
      trace_conn(conn->id, "close");
      enqueue_ingress(IngressItem{IngressItem::Kind::kConnClosed, conn->id, {}});
    }

    pfds.clear();
    polled.clear();
    pfds.push_back(pollfd{reader.wake_read_fd, POLLIN, 0});
    {
      std::lock_guard lock(reader.mutex);
      for (const ConnPtr& conn : reader.conns) {
        short events = POLLIN;
        {
          std::lock_guard conn_lock(conn->mutex);
          if (conn->framed.want_write()) events |= POLLOUT;
          pfds.push_back(pollfd{conn->framed.socket().fd(), events, 0});
        }
        polled.push_back(conn);
      }
    }

    const int ready = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/50);
    if (ready < 0) continue;
    if (pfds[0].revents & POLLIN) drain_pipe(reader.wake_read_fd);

    for (std::size_t i = 0; i < polled.size(); ++i) {
      const short revents = pfds[i + 1].revents;
      if (revents == 0) continue;
      const ConnPtr& conn = polled[i];
      if (conn->closed.load(std::memory_order_acquire)) continue;
      bool dead = false;
      bool read_error = false;
      frames.clear();
      {
        std::lock_guard conn_lock(conn->mutex);
        if (revents & (POLLIN | POLLHUP | POLLERR)) {
          const FramedConn::IoStatus status = conn->framed.read_frames(frames);
          if (status == FramedConn::IoStatus::kClosed) dead = true;
          if (status == FramedConn::IoStatus::kError) {
            dead = true;
            read_error = true;
          }
        }
        if (!dead && (revents & POLLOUT)) {
          if (conn->framed.flush() != FramedConn::IoStatus::kOk) dead = true;
        }
      }
      for (Frame& frame : frames) {
        enqueue_ingress(
            IngressItem{IngressItem::Kind::kFrame, conn->id, std::move(frame)});
      }
      if (read_error) {
        stats_.conn_read_errors.fetch_add(1, std::memory_order_relaxed);
        count("svc.conn_read_errors");
      }
      if (dead) conn->closed.store(true, std::memory_order_release);
    }
  }
}

void SocketServer::enqueue_ingress(IngressItem item) {
  {
    std::lock_guard lock(ingress_mutex_);
    if (item.kind == IngressItem::Kind::kFrame &&
        ingress_queue_.size() >= options_.ingress_queue_capacity) {
      // Oldest-first shedding, reports only: the shed sender's retry
      // recovers it, and decision requests must never vanish here.
      auto oldest = std::find_if(
          ingress_queue_.begin(), ingress_queue_.end(), [](const IngressItem& q) {
            return q.kind == IngressItem::Kind::kFrame &&
                   q.frame.type == MsgType::kDeviceReport;
          });
      if (oldest != ingress_queue_.end()) {
        ingress_queue_.erase(oldest);
        stats_.ingress_shed.fetch_add(1, std::memory_order_relaxed);
        count("svc.ingress_shed");
      } else if (item.frame.type == MsgType::kDeviceReport) {
        stats_.ingress_shed.fetch_add(1, std::memory_order_relaxed);
        count("svc.ingress_shed");
        return;  // all queued work is requests/control; drop the newcomer
      }
    }
    if (item.kind == IngressItem::Kind::kFrame) {
      stats_.ingress_frames.fetch_add(1, std::memory_order_relaxed);
      count("svc.ingress_frames");
    }
    ingress_queue_.push_back(std::move(item));
  }
  ingress_cv_.notify_one();
}

SocketServer::ConnPtr SocketServer::route_of(
    std::span<const std::uint8_t> frame_bytes) {
  const std::uint32_t type = frame_type_of(frame_bytes);
  std::uint64_t conn_id = 0;
  if (type == static_cast<std::uint32_t>(MsgType::kReportAck)) {
    const std::uint64_t device = payload_u64_of(frame_bytes);
    const auto it = device_route_.find(device);
    if (it == device_route_.end()) return nullptr;
    conn_id = it->second;
  } else if (type == static_cast<std::uint32_t>(MsgType::kDecisionResponse)) {
    conn_id = controller_conn_;
  }
  if (conn_id == 0) return nullptr;
  std::lock_guard lock(conns_mutex_);
  const auto it = conns_.find(conn_id);
  return it != conns_.end() ? it->second : nullptr;
}

void SocketServer::deliver_to_conn(const ConnPtr& conn,
                                   std::span<const std::uint8_t> frame_bytes) {
  if (conn == nullptr || conn->closed.load(std::memory_order_acquire)) {
    stats_.egress_unroutable.fetch_add(1, std::memory_order_relaxed);
    count("svc.egress_unroutable");
    return;
  }
  bool stalled = false;
  bool need_wake = false;
  {
    std::lock_guard conn_lock(conn->mutex);
    if (!conn->framed.queue_frame(frame_bytes)) {
      stalled = true;
    } else {
      // Opportunistic flush: the reader may be mid-poll without POLLOUT
      // for this connection; often the kernel takes the frame right now.
      const FramedConn::IoStatus status = conn->framed.flush();
      if (status != FramedConn::IoStatus::kOk) {
        conn->closed.store(true, std::memory_order_release);
        need_wake = true;
      } else if (conn->framed.want_write()) {
        need_wake = true;
      }
    }
  }
  if (stalled) {
    conn->closed.store(true, std::memory_order_release);
    stats_.conns_stalled.fetch_add(1, std::memory_order_relaxed);
    count("svc.conn_stalled");
    trace_conn(conn->id, "stall");
    need_wake = true;
  } else {
    stats_.egress_frames.fetch_add(1, std::memory_order_relaxed);
    count("svc.egress_frames");
  }
  if (need_wake) wake_reader(*readers_[conn->owner]);
}

void SocketServer::service_loop() {
  std::vector<IngressItem> batch;
  std::vector<std::uint8_t> scratch;

  auto process_batch = [&] {
    const std::uint64_t tick = current_tick();
    for (IngressItem& item : batch) {
      if (item.kind == IngressItem::Kind::kConnClosed) {
        for (auto it = device_route_.begin(); it != device_route_.end();) {
          it = it->second == item.conn_id ? device_route_.erase(it)
                                          : std::next(it);
        }
        if (controller_conn_ == item.conn_id) controller_conn_ = 0;
        continue;
      }
      // Route bookkeeping: replies chase the latest connection a sender
      // used, so reconnects are transparent.
      if (item.frame.type == MsgType::kDeviceReport) {
        try {
          const DeviceReport report = decode_device_report(item.frame.payload);
          device_route_[report.device_id] = item.conn_id;
        } catch (const util::SerialError&) {
          // Malformed payload: the service counts it below.
        }
      } else if (item.frame.type == MsgType::kDecisionRequest) {
        controller_conn_ = item.conn_id;
      }
      service_.ingest(item.frame, tick);
    }
    batch.clear();
    service_.poll(tick);
    for (const std::vector<std::uint8_t>& frame : service_.take_outbox()) {
      if (!chaos_enabled_) {
        deliver_to_conn(route_of(frame), frame);
        continue;
      }
      const WireFaultInjector::Plan plan = egress_chaos_.plan_frame();
      if (plan.dropped) {
        stats_.chaos_dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      for (std::size_t c = 0; c < plan.copies; ++c) {
        scratch.assign(frame.begin(), frame.end());
        const WireFaultInjector::Delivery& delivery = plan.delivery[c];
        if (delivery.corrupted && !scratch.empty()) {
          scratch[delivery.corrupt_index % scratch.size()] ^=
              delivery.corrupt_mask;
          stats_.chaos_corrupted.fetch_add(1, std::memory_order_relaxed);
        }
        if (c > 0) {
          stats_.chaos_duplicated.fetch_add(1, std::memory_order_relaxed);
        }
        deliver_to_conn(route_of(frame), scratch);
      }
    }
    stats_.decisions_issued.store(service_.stats().decisions,
                                  std::memory_order_relaxed);
  };

  for (;;) {
    {
      std::unique_lock lock(ingress_mutex_);
      ingress_cv_.wait_for(
          lock, std::chrono::microseconds(options_.idle_poll_interval_us),
          [&] {
            return !ingress_queue_.empty() ||
                   service_stop_.load(std::memory_order_acquire);
          });
      batch.assign(std::make_move_iterator(ingress_queue_.begin()),
                   std::make_move_iterator(ingress_queue_.end()));
      ingress_queue_.clear();
    }
    const bool last_lap = service_stop_.load(std::memory_order_acquire);
    process_batch();
    if (last_lap) break;  // readers are joined: the drained batch was final
  }
}

ServerStats SocketServer::stats() const {
  ServerStats snapshot;
  snapshot.conns_accepted = stats_.conns_accepted.load(std::memory_order_relaxed);
  snapshot.conns_closed = stats_.conns_closed.load(std::memory_order_relaxed);
  snapshot.conns_stalled = stats_.conns_stalled.load(std::memory_order_relaxed);
  snapshot.conn_read_errors =
      stats_.conn_read_errors.load(std::memory_order_relaxed);
  snapshot.ingress_frames = stats_.ingress_frames.load(std::memory_order_relaxed);
  snapshot.ingress_shed = stats_.ingress_shed.load(std::memory_order_relaxed);
  snapshot.egress_frames = stats_.egress_frames.load(std::memory_order_relaxed);
  snapshot.egress_unroutable =
      stats_.egress_unroutable.load(std::memory_order_relaxed);
  snapshot.chaos_dropped = stats_.chaos_dropped.load(std::memory_order_relaxed);
  snapshot.chaos_corrupted =
      stats_.chaos_corrupted.load(std::memory_order_relaxed);
  snapshot.chaos_duplicated =
      stats_.chaos_duplicated.load(std::memory_order_relaxed);
  snapshot.decisions_issued =
      stats_.decisions_issued.load(std::memory_order_relaxed);
  return snapshot;
}

std::size_t SocketServer::open_connections() const {
  std::lock_guard lock(conns_mutex_);
  std::size_t open = 0;
  for (const auto& [id, conn] : conns_) {
    if (!conn->closed.load(std::memory_order_acquire)) ++open;
  }
  return open;
}

}  // namespace helcfl::svc
