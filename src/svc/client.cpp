#include "svc/client.h"

#include <stdexcept>

namespace helcfl::svc {

ServiceClient::ServiceClient(const RetryOptions& retry, util::Rng rng,
                             std::uint64_t first_controller_seq)
    : policy_(retry),
      rng_(rng),
      next_controller_seq_(first_controller_seq) {
  if (first_controller_seq == 0) {
    throw std::logic_error(
        "ServiceClient: controller_seq numbering is 1-based (0 means "
        "\"nothing processed yet\" on the service side)");
  }
}

void ServiceClient::send_report(const DeviceReport& report,
                                std::uint64_t now_tick) {
  Pending entry;
  entry.frame = encode_frame(encode(report));
  entry.next_tx_tick = now_tick;
  pending_reports_[{report.device_id, report.report_seq}] = std::move(entry);
}

std::uint64_t ServiceClient::request_decision(std::uint64_t round,
                                              std::uint64_t now_tick) {
  if (pending_request_.has_value()) {
    throw std::logic_error(
        "ServiceClient: a decision request is already outstanding");
  }
  if (decision_.has_value()) {
    throw std::logic_error(
        "ServiceClient: take_decision() before requesting the next one");
  }
  const std::uint64_t seq = next_controller_seq_++;
  DecisionRequest request;
  request.controller_seq = seq;
  request.round = round;
  Pending entry;
  entry.frame = encode_frame(encode(request));
  entry.next_tx_tick = now_tick;
  pending_request_ = std::move(entry);
  pending_request_seq_ = seq;
  return seq;
}

bool ServiceClient::transmit_due(Pending& entry, std::uint64_t now_tick,
                                 std::vector<std::vector<std::uint8_t>>& out) {
  if (entry.next_tx_tick > now_tick) return true;
  if (entry.attempts >= policy_.options().max_attempts) {
    ++exhausted_;
    return false;
  }
  out.push_back(entry.frame);
  ++entry.attempts;
  if (entry.attempts > 1) ++retries_;
  // attempts is now the number of transmissions made; the next one would
  // be retry #attempts, so that is the 1-based backoff index.
  entry.next_tx_tick =
      now_tick + policy_.delay_before_retry(entry.attempts, rng_);
  return true;
}

std::vector<std::vector<std::uint8_t>> ServiceClient::poll(
    std::uint64_t now_tick) {
  std::vector<std::vector<std::uint8_t>> out;
  for (auto it = pending_reports_.begin(); it != pending_reports_.end();) {
    if (transmit_due(it->second, now_tick, out)) {
      ++it;
    } else {
      it = pending_reports_.erase(it);
    }
  }
  if (pending_request_.has_value() &&
      !transmit_due(*pending_request_, now_tick, out)) {
    pending_request_.reset();
  }
  return out;
}

void ServiceClient::deliver(std::span<const std::uint8_t> bytes) {
  std::vector<Frame> frames;
  std::vector<FrameError> errors;
  decode_datagram(bytes, frames, errors);
  frames_rejected_ += errors.size();

  for (const Frame& frame : frames) {
    switch (frame.type) {
      case MsgType::kReportAck: {
        ReportAck ack;
        try {
          ack = decode_report_ack(frame.payload);
        } catch (const util::SerialError&) {
          ++frames_rejected_;
          continue;
        }
        // A duplicate ack finds nothing pending — absorbed here.
        if (pending_reports_.erase({ack.device_id, ack.report_seq}) == 0) {
          ++stale_messages_;
        }
        break;
      }
      case MsgType::kDecisionResponse: {
        DecisionResponse response;
        try {
          response = decode_decision_response(frame.payload);
        } catch (const util::SerialError&) {
          ++frames_rejected_;
          continue;
        }
        if (pending_request_.has_value() &&
            response.controller_seq == pending_request_seq_) {
          decision_ = std::move(response);
          pending_request_.reset();
        } else {
          // Duplicate of an already-completed response, or one for a
          // request that exhausted its budget: drop it.
          ++stale_messages_;
        }
        break;
      }
      case MsgType::kDeviceReport:
      case MsgType::kDecisionRequest:
        // Client-to-service traffic reflected back at us.
        ++frames_rejected_;
        break;
    }
  }
}

std::optional<DecisionResponse> ServiceClient::take_decision() {
  std::optional<DecisionResponse> out;
  decision_.swap(out);
  return out;
}

}  // namespace helcfl::svc
