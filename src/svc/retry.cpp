#include "svc/retry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace helcfl::svc {

void RetryOptions::validate() const {
  if (base_delay_ticks == 0) {
    throw std::invalid_argument("RetryOptions: base_delay_ticks must be >= 1");
  }
  if (!(backoff_multiplier >= 1.0) || !std::isfinite(backoff_multiplier)) {
    throw std::invalid_argument(
        "RetryOptions: backoff_multiplier = " + std::to_string(backoff_multiplier) +
        " must be a finite multiplier >= 1");
  }
  if (max_delay_ticks < base_delay_ticks) {
    throw std::invalid_argument(
        "RetryOptions: max_delay_ticks (" + std::to_string(max_delay_ticks) +
        ") must be >= base_delay_ticks (" + std::to_string(base_delay_ticks) + ")");
  }
  if (!(jitter >= 0.0 && jitter < 1.0)) {
    throw std::invalid_argument("RetryOptions: jitter = " + std::to_string(jitter) +
                                " must be in [0, 1)");
  }
  if (max_attempts == 0) {
    throw std::invalid_argument("RetryOptions: max_attempts must be >= 1");
  }
}

RetryPolicy::RetryPolicy(const RetryOptions& options) : options_(options) {
  options_.validate();
}

std::uint64_t RetryPolicy::delay_before_retry(std::size_t retry,
                                              util::Rng& rng) const {
  if (retry == 0) {
    throw std::invalid_argument(
        "RetryPolicy::delay_before_retry: retry index is 1-based");
  }
  // Exponential growth with a ceiling; computed in doubles so a large
  // retry index saturates at max_delay_ticks instead of overflowing.
  const double raw = static_cast<double>(options_.base_delay_ticks) *
                     std::pow(options_.backoff_multiplier,
                              static_cast<double>(retry - 1));
  const double capped =
      std::min(raw, static_cast<double>(options_.max_delay_ticks));
  // Multiplicative jitter in [1 - j, 1 + j); the draw happens even for
  // jitter = 0 so the caller's stream advances identically across configs.
  const double factor = 1.0 + options_.jitter * (2.0 * rng.uniform() - 1.0);
  const double jittered = capped * factor;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(jittered)));
}

}  // namespace helcfl::svc
