// Multi-threaded socket front end for SchedulerService (docs/SERVICE.md §7).
//
// SocketServer turns the single-threaded, logical-tick service core into a
// network server without touching its decision semantics:
//
//   acceptor thread ──► reader threads (N) ──► bounded ingress queue ──►
//                                             service thread (the ONLY
//                                             caller of SchedulerService)
//
//   * the acceptor accepts connections and assigns them round-robin to
//     the N reader threads;
//   * each reader poll()s its connections, reassembles frames with the
//     per-connection streaming decoder (svc/transport.h), and pushes
//     validated frames into the ingress queue — the queue is bounded and
//     sheds the *oldest queued device report* on overflow, the same
//     newest-data-wins policy the service applies to its own queue;
//   * the service thread is the sole consumer: it feeds frames to
//     SchedulerService, drives poll() on a logical tick derived from
//     wall time (or an injected tick_source), and routes the outbox back
//     to connections — so `controller_seq` exactly-once processing and
//     snapshot byte-identity are exactly what they were in-process.
//
// Response routing: a ReportAck goes to the connection that most recently
// sent a report for that device; a DecisionResponse goes to the connection
// that most recently sent a decision request.  A response whose connection
// died is dropped — the peer's retransmit (after reconnecting) recovers
// it, exactly like a lost datagram.
//
// Slow peers: each connection's output buffer is bounded
// (max_conn_output_bytes); a peer that stops reading long enough to fill
// it is disconnected (`svc.conn_stalled`) rather than buffered without
// bound.  Disconnection is never fatal to the protocol: the lease model
// parks silent devices, retries re-deliver lost messages.
//
// stop() drains gracefully: no new connections, remaining queued frames
// are processed, pending output is flushed (bounded by drain_timeout_ms),
// then sockets close.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/instruments.h"
#include "svc/service.h"
#include "svc/transport.h"
#include "svc/wire_faults.h"

namespace helcfl::svc {

/// Aggregated transport-level health counters (mirrored into the attached
/// obs::Registry under the svc.conn_* / svc.ingress_* / svc.egress_*
/// names in docs/OBSERVABILITY.md).
struct ServerStats {
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_closed = 0;    ///< every close, any reason
  std::uint64_t conns_stalled = 0;   ///< closed for output-backlog overflow
  std::uint64_t conn_read_errors = 0;
  std::uint64_t ingress_frames = 0;  ///< validated frames queued
  std::uint64_t ingress_shed = 0;    ///< oldest-report sheds by the queue
  std::uint64_t egress_frames = 0;   ///< outbox frames routed to a peer
  std::uint64_t egress_unroutable = 0;  ///< no live connection for a frame
  std::uint64_t chaos_dropped = 0;      ///< egress chaos faults (tests)
  std::uint64_t chaos_corrupted = 0;
  std::uint64_t chaos_duplicated = 0;
  /// Mirror of the service's decision counter, published by the service
  /// thread — the race-free way to watch progress while the server runs.
  std::uint64_t decisions_issued = 0;
};

struct ServerOptions {
  /// Reader threads decoding ingress in parallel (the acceptor and the
  /// service loop are one thread each on top).
  std::size_t ingress_threads = 1;

  /// Bounded frame handoff between readers and the service thread; on
  /// overflow the oldest queued *device report* is shed (its sender's
  /// retry recovers it).  Decision requests are never shed here.
  std::size_t ingress_queue_capacity = 4096;

  /// Per-connection output backlog bound; exceeding it closes the
  /// connection (slow-client backpressure).
  std::size_t max_conn_output_bytes = std::size_t{8} << 20;

  int listen_backlog = 64;

  /// When > 0, applied to every accepted socket (tests shrink it to force
  /// short writes); 0 keeps the OS default.
  int conn_send_buffer_bytes = 0;

  /// Service-loop cadence when no traffic arrives — leases still expire
  /// on time because every loop iteration calls poll(tick).
  std::uint64_t idle_poll_interval_us = 500;

  /// How long stop() keeps flushing pending output before closing.
  std::uint64_t drain_timeout_ms = 1000;

  /// Logical clock for the service core.  Default (unset): milliseconds
  /// of wall time since start().  Tests inject a counter they control so
  /// lease expiry is deterministic.
  std::function<std::uint64_t()> tick_source;

  /// Chaos knob for robustness tests: fault outbound frames (drop,
  /// corrupt, duplicate — delay is meaningless on an ordered stream and
  /// ignored) before they reach a connection.  Inert by default.
  WireFaultOptions egress_chaos;
  std::uint64_t egress_chaos_seed = 0;

  /// Throws ServiceError with an actionable message on bad knobs.
  void validate() const;
};

/// See the header comment.  The service is borrowed: the caller constructs
/// (and may snapshot/restore) it, but must not touch it between start()
/// and stop() — the service thread is the only permitted caller.
class SocketServer {
 public:
  SocketServer(SchedulerService& service, const Endpoint& endpoint,
               const ServerOptions& options, obs::Instruments instruments = {});
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and spawns the acceptor, reader, and service
  /// threads.  Throws TransportError/ServiceError on setup failure.
  void start();

  /// Graceful drain; idempotent.  Safe to call from any thread except the
  /// server's own.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound endpoint (resolves an ephemeral tcp:...:0 port).  Only
  /// valid after start().
  const Endpoint& endpoint() const { return bound_endpoint_; }

  ServerStats stats() const;
  std::size_t open_connections() const;

 private:
  struct Conn {
    std::uint64_t id = 0;
    std::size_t owner = 0;  ///< reader thread index
    FramedConn framed;      ///< guarded by `mutex`
    std::mutex mutex;
    std::atomic<bool> closed{false};
  };
  using ConnPtr = std::shared_ptr<Conn>;

  struct IngressItem {
    enum class Kind { kFrame, kConnClosed };
    Kind kind = Kind::kFrame;
    std::uint64_t conn_id = 0;
    Frame frame;
  };

  /// One reader thread's self-wakeable poll loop state.
  struct Reader {
    std::thread thread;
    std::mutex mutex;                ///< guards `conns`
    std::vector<ConnPtr> conns;
    int wake_read_fd = -1;
    int wake_write_fd = -1;
  };

  void acceptor_loop();
  void reader_loop(std::size_t index);
  void service_loop();

  void wake_reader(Reader& reader);
  void enqueue_ingress(IngressItem item);
  /// Routes one encoded outbox frame to its connection (nullptr = drop).
  ConnPtr route_of(std::span<const std::uint8_t> frame_bytes);
  void deliver_to_conn(const ConnPtr& conn,
                       std::span<const std::uint8_t> frame_bytes);
  std::uint64_t current_tick() const;
  void count(std::string_view name, std::uint64_t delta = 1);
  void trace_conn(std::uint64_t conn_id, std::string_view kind);
  void drain_output();

  SchedulerService& service_;
  Endpoint requested_endpoint_;
  Endpoint bound_endpoint_;
  ServerOptions options_;
  obs::Instruments instruments_;

  Socket listen_socket_;
  std::thread acceptor_thread_;
  std::vector<std::unique_ptr<Reader>> readers_;
  std::thread service_thread_;

  // Ingress queue: readers produce, the service thread consumes.
  std::mutex ingress_mutex_;
  std::condition_variable ingress_cv_;
  std::deque<IngressItem> ingress_queue_;

  // Connection registry (service thread routes by id; stop() drains).
  mutable std::mutex conns_mutex_;
  std::unordered_map<std::uint64_t, ConnPtr> conns_;
  std::atomic<std::uint64_t> next_conn_id_{1};

  // Routing state — service thread only.
  std::unordered_map<std::uint64_t, std::uint64_t> device_route_;
  std::uint64_t controller_conn_ = 0;

  WireFaultInjector egress_chaos_;
  bool chaos_enabled_ = false;

  std::chrono::steady_clock::time_point start_time_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};      ///< acceptor + readers exit
  std::atomic<bool> service_stop_{false};  ///< service loop final-drains
  bool started_ = false;

  // Stats (atomics: touched from acceptor/reader/service threads).
  struct AtomicStats {
    std::atomic<std::uint64_t> conns_accepted{0};
    std::atomic<std::uint64_t> conns_closed{0};
    std::atomic<std::uint64_t> conns_stalled{0};
    std::atomic<std::uint64_t> conn_read_errors{0};
    std::atomic<std::uint64_t> ingress_frames{0};
    std::atomic<std::uint64_t> ingress_shed{0};
    std::atomic<std::uint64_t> egress_frames{0};
    std::atomic<std::uint64_t> egress_unroutable{0};
    std::atomic<std::uint64_t> chaos_dropped{0};
    std::atomic<std::uint64_t> chaos_corrupted{0};
    std::atomic<std::uint64_t> chaos_duplicated{0};
    std::atomic<std::uint64_t> decisions_issued{0};
  };
  AtomicStats stats_;
};

}  // namespace helcfl::svc
