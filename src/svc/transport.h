// POSIX socket transport for the scheduler-service protocol (docs/SERVICE.md §6).
//
// PR 7 made the protocol transport-agnostic; this header gives it a real
// wire: TCP and Unix-domain stream sockets, non-blocking, poll()-driven.
// The framing layer (svc/frame.h) already assumes an adversarial byte
// stream, so the transport's only jobs are the ones the in-process codec
// never saw:
//
//   * stream reassembly — TCP delivers arbitrary byte slices; FramedConn
//     owns a per-connection streaming FrameDecoder, so a frame split
//     across any read boundary (down to 1-byte reads) reassembles, and a
//     corrupt byte on a live connection costs a resync, not the session;
//   * short writes — a full kernel send buffer accepts a prefix of a
//     frame; FramedConn buffers the remainder and finishes it when the
//     socket drains, so no frame is ever torn by the sender;
//   * backpressure — the per-connection output buffer is bounded; a
//     peer that stops reading eventually fails queue_frame(), and the
//     caller (svc/listener.h) closes the connection instead of buffering
//     without bound;
//   * connection loss — reads observe EOF/reset and report kClosed; the
//     lease-liveness model (svc/service.h) absorbs the rest: a device
//     whose connection died simply stops reporting and its lease expires.
//
// Nothing here knows message semantics: retransmission, dedup, and
// exactly-once decisions stay in ServiceClient/SchedulerService, which is
// what makes decisions over this transport provably identical to the
// in-process datagram path (tests/test_svc_tcp_differential.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "svc/frame.h"

namespace helcfl::svc {

/// Thrown on setup errors (bad endpoint spec, bind/listen/connect
/// failures).  Established connections never throw on wire traffic —
/// errors surface as IoStatus values the caller handles.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A listen/connect address.  Text form (accepted by parse(), produced by
/// to_string()):
///   tcp:HOST:PORT   numeric IPv4 host; port 0 binds an ephemeral port
///   unix:PATH       filesystem path of a Unix-domain stream socket
struct Endpoint {
  enum class Kind { kTcp, kUnix };

  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";  ///< TCP only, numeric IPv4
  std::uint16_t port = 0;          ///< TCP only; 0 = ephemeral
  std::string path;                ///< Unix only

  /// Parses the text form; throws TransportError with the offending spec.
  static Endpoint parse(const std::string& spec);
  std::string to_string() const;
};

/// Move-only RAII file descriptor with the socket plumbing the transport
/// needs.  All factories return non-blocking sockets.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

  /// Binds and listens on `endpoint` (SO_REUSEADDR for TCP; a stale Unix
  /// socket file is unlinked first).  Throws TransportError on failure.
  static Socket listen_on(const Endpoint& endpoint, int backlog);

  /// Connects to `endpoint` (blocking connect, then switched to
  /// non-blocking; TCP_NODELAY for TCP).  Throws TransportError.
  static Socket connect_to(const Endpoint& endpoint);

  /// A connected non-blocking AF_UNIX stream pair — the loopback wire the
  /// stream-edge-case tests drive byte by byte.
  static std::pair<Socket, Socket> stream_pair();

  /// Accepts one pending connection as a non-blocking socket (TCP_NODELAY
  /// applied); nullopt when the queue is empty.  Throws on fatal errors.
  std::optional<Socket> accept_one();

  /// The bound local endpoint — resolves an ephemeral TCP port after
  /// listen_on({... port = 0}).
  Endpoint local_endpoint() const;

  void set_nonblocking(bool on);
  /// Shrinks/grows the kernel send buffer (tests force short writes with
  /// tiny values; the kernel clamps to its floor).
  void set_send_buffer(int bytes);
  void set_receive_buffer(int bytes);

 private:
  int fd_ = -1;
};

/// One framed, non-blocking stream connection: a streaming FrameDecoder on
/// the read side, a bounded elastic output buffer on the write side.  Used
/// by both halves of the wire — the server wraps every accepted socket in
/// one (svc/listener.h), the client wraps its connect socket
/// (ClientChannel below).  Not thread-safe; callers serialize access.
class FramedConn {
 public:
  struct Options {
    /// queue_frame() fails once the unsent backlog would exceed this —
    /// the slow-peer backpressure bound.
    std::size_t max_output_bytes = std::size_t{8} << 20;
    /// Bytes per read() attempt.
    std::size_t read_chunk_bytes = std::size_t{64} << 10;
  };

  enum class IoStatus {
    kOk,      ///< progress made (possibly zero bytes; EAGAIN is kOk)
    kClosed,  ///< orderly EOF or peer reset; no further I/O possible
    kError,   ///< unexpected errno; treat the connection as dead
  };

  FramedConn() = default;
  explicit FramedConn(Socket socket);
  FramedConn(Socket socket, Options options);

  /// Reads every byte the socket currently has and appends each validated
  /// frame to `out` (decode rejections are absorbed by the decoder's
  /// resync and visible in decode_stats()).  Frames already buffered are
  /// delivered even when the read observes EOF.
  IoStatus read_frames(std::vector<Frame>& out);

  /// Queues one encoded frame for transmission.  False when the backlog
  /// cap would be exceeded — the frame is NOT queued (a partially-sent
  /// frame already in flight is never abandoned; framing stays intact).
  bool queue_frame(std::span<const std::uint8_t> frame_bytes);

  /// Writes as much of the backlog as the socket accepts.  Partial sends
  /// keep the remainder queued; EAGAIN returns kOk with want_write() true.
  IoStatus flush();

  bool want_write() const { return out_head_ < outbuf_.size(); }
  std::size_t output_backlog() const { return outbuf_.size() - out_head_; }

  const FrameDecoder::Stats& decode_stats() const { return decoder_.stats(); }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  /// flush() calls that moved only part of the backlog (short writes).
  std::uint64_t short_writes() const { return short_writes_; }

  Socket& socket() { return socket_; }
  const Socket& socket() const { return socket_; }

 private:
  Socket socket_;
  Options options_;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> outbuf_;
  std::size_t out_head_ = 0;  ///< sent prefix, compacted when it dominates
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t short_writes_ = 0;
};

/// Client-side convenience endpoint: connect, send frames (blocking until
/// the kernel accepts them), poll for inbound frames with a timeout.
/// After a failure (send_frame false / poll observes close) the channel
/// reports !connected(); callers reconnect by constructing a fresh
/// ClientChannel — which also resets decoder state, the stream-level
/// recovery path for a poisoned connection.
class ClientChannel {
 public:
  ClientChannel() = default;
  /// Connects immediately; throws TransportError when the endpoint is
  /// unreachable.
  explicit ClientChannel(const Endpoint& endpoint);
  ClientChannel(const Endpoint& endpoint, FramedConn::Options options);

  bool connected() const { return conn_.has_value(); }
  void close();

  /// Sends one encoded frame, waiting (poll) for writability as needed.
  /// False when the connection died mid-send; the channel is closed.
  bool send_frame(std::span<const std::uint8_t> frame_bytes);

  /// Waits up to `timeout_ms` for inbound bytes and appends every decoded
  /// frame to `out`.  Returns the number of frames appended; 0 with
  /// !connected() means the server closed the connection.
  std::size_t poll_frames(std::vector<Frame>& out, int timeout_ms);

  FrameDecoder::Stats decode_stats() const {
    return conn_.has_value() ? conn_->decode_stats() : FrameDecoder::Stats{};
  }

 private:
  std::optional<FramedConn> conn_;
};

}  // namespace helcfl::svc
