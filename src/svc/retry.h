// Client-side retry schedule: exponential backoff with jitter, bounded
// attempts (DESIGN.md §13).
//
// Every request the service client sends (device report, decision request)
// is retransmitted on this schedule until the matching response arrives or
// the attempt budget is exhausted.  Jitter decorrelates retry storms when
// many devices lose the same round of acks; determinism is preserved
// because the jitter draws come from the caller's seeded stream.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/rng.h"

namespace helcfl::svc {

struct RetryOptions {
  std::uint64_t base_delay_ticks = 2;   ///< backoff before the 1st retry
  double backoff_multiplier = 2.0;      ///< delay growth per retry, >= 1
  std::uint64_t max_delay_ticks = 32;   ///< backoff ceiling
  double jitter = 0.25;                 ///< ± fraction applied to each delay,
                                        ///< in [0, 1)
  std::size_t max_attempts = 16;        ///< total transmissions (first + retries)

  /// Throws std::invalid_argument with an actionable message on bad knobs.
  void validate() const;
};

/// Stateless schedule calculator; the caller tracks attempt counts.
class RetryPolicy {
 public:
  RetryPolicy() : RetryPolicy(RetryOptions{}) {}
  explicit RetryPolicy(const RetryOptions& options);

  /// Ticks to wait before retransmission number `retry` (1-based: the
  /// value for retry = 1 schedules the first retransmission).  Exponential
  /// in `retry`, capped at max_delay_ticks, jittered by ±jitter via `rng`,
  /// and always >= 1 tick.
  std::uint64_t delay_before_retry(std::size_t retry, util::Rng& rng) const;

  /// True when `attempts_made` transmissions have used up the budget.
  bool exhausted(std::size_t attempts_made) const {
    return attempts_made >= options_.max_attempts;
  }

  const RetryOptions& options() const { return options_; }

 private:
  RetryOptions options_;
};

}  // namespace helcfl::svc
