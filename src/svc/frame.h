// Framed wire protocol of the FLCC scheduler service (DESIGN.md §13).
//
// The service and its clients exchange length-prefixed, checksummed binary
// frames built on util/serial.h.  The framing is designed robustness-first:
// a receiver must survive truncated, oversized, bit-flipped, duplicated,
// and reordered input without crashing, leaking, or misparsing a later
// healthy frame.  Layout (all little-endian):
//
//   u32 magic "HSVC" | u32 version | u32 type | u64 payload_size
//   u64 fnv1a64(payload) | payload_size bytes of payload
//
// The checksum covers the payload only, so header corruption and payload
// corruption are detected (and counted) as distinct failures.  A payload
// size above kMaxPayloadBytes is rejected *before* any buffering sized
// from it — a flipped bit in the length field must not become a multi-GB
// allocation.  After any rejection the decoder resynchronizes by scanning
// for the next magic, so one corrupt frame never poisons the frames that
// follow it.
//
// Duplicate suppression is deliberately NOT here: the frame layer cannot
// know message semantics.  The service dedups on the per-sender sequence
// numbers carried inside each payload (svc/service.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/serial.h"

namespace helcfl::svc {

/// "HSVC" read little-endian.
inline constexpr std::uint32_t kFrameMagic = 0x43565348;
inline constexpr std::uint32_t kFrameVersion = 1;
/// magic + version + type + payload_size + checksum.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 4 + 8 + 8;
/// Upper bound on a single payload; large enough for a decision over a
/// 100k-user fleet, small enough that a corrupt length field cannot force
/// a giant allocation.
inline constexpr std::size_t kMaxPayloadBytes = std::size_t{4} << 20;

/// Wire message types.  Values are part of the protocol; never renumber.
enum class MsgType : std::uint32_t {
  kDeviceReport = 1,      ///< device → service: state report (renews lease)
  kReportAck = 2,         ///< service → device: report applied (or re-ack)
  kDecisionRequest = 3,   ///< controller → service: run one selection round
  kDecisionResponse = 4,  ///< service → controller: (selection, frequency)
};

/// True iff `type` is a known MsgType value.
bool is_known_type(std::uint32_t type);

/// One decoded frame: type plus raw payload bytes (parse via the message
/// helpers below).
struct Frame {
  MsgType type = MsgType::kDeviceReport;
  std::vector<std::uint8_t> payload;
};

/// Why a frame was rejected.  Every value maps to a `svc.frames_rejected`
/// increment and names the counter suffix used by the service.
enum class FrameError : std::uint8_t {
  kBadMagic = 0,    ///< resynchronized past garbage to find this out
  kBadVersion,      ///< magic matched but the version is foreign
  kBadType,         ///< unknown MsgType value
  kOversized,       ///< declared payload_size > kMaxPayloadBytes
  kChecksumMismatch,  ///< payload bits do not hash to the header checksum
  kTruncated,       ///< datagram ended mid-frame (datagram mode only)
};

/// Stable lowercase label ("bad_magic", "checksum_mismatch", ...).
std::string_view frame_error_name(FrameError error);

/// Encodes one frame: header (with payload checksum) + payload.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Incremental decoder over a byte stream.  feed() appends transport
/// bytes; next() yields complete frames, rejection reasons, or asks for
/// more input.  The decoder never throws on wire data and always makes
/// progress: a rejected frame consumes at least one byte.
class FrameDecoder {
 public:
  enum class Result {
    kFrame,     ///< `out` holds a validated frame
    kNeedMore,  ///< the buffered prefix is a valid but incomplete frame
    kRejected,  ///< `error` holds the reason; call next() again
  };

  struct Stats {
    std::uint64_t frames = 0;        ///< validated frames produced
    std::uint64_t rejected = 0;      ///< rejection events (any reason)
    std::uint64_t resync_bytes = 0;  ///< garbage bytes skipped hunting magic
  };

  /// Appends transport bytes to the internal buffer.
  void feed(std::span<const std::uint8_t> bytes);

  /// Decodes the next frame out of the buffer.  kRejected consumes the
  /// offending bytes (one byte for bad magic, the whole frame otherwise),
  /// so callers loop until kNeedMore.
  Result next(Frame& out, FrameError& error);

  /// Drops all buffered bytes (datagram boundary).
  void reset();

  std::size_t buffered() const { return buffer_.size() - head_; }
  const Stats& stats() const { return stats_; }

 private:
  /// Skips buffered bytes until a magic prefix (or tail shorter than the
  /// magic) leads the buffer.  Returns the bytes skipped.
  std::size_t skip_to_magic();

  std::vector<std::uint8_t> buffer_;
  std::size_t head_ = 0;  ///< consumed prefix, compacted when it dominates
  Stats stats_;
};

/// Decodes a whole datagram (one ingest() call's bytes) into frames.
/// Unlike the streaming decoder a trailing partial frame is a *rejection*
/// (kTruncated), not a wait — datagram transports never deliver the rest.
/// Appends validated frames to `out`; appends each rejection reason to
/// `errors`.  Never throws on wire data.
void decode_datagram(std::span<const std::uint8_t> bytes,
                     std::vector<Frame>& out, std::vector<FrameError>& errors);

// --- messages ------------------------------------------------------------
//
// Every message carries the sender's sequence number so the service (and
// client) can suppress duplicates introduced by retries or by the wire.
// decode_* helpers throw util::SerialError on a malformed payload (wrong
// field count, trailing bytes); callers count that as a rejection.

/// Device → service: the device's current delay profile.  A valid report
/// renews the device's liveness lease; report_seq orders reports from the
/// same device (stale/duplicate seqs are re-acked but not re-applied).
struct DeviceReport {
  std::uint64_t device_id = 0;
  std::uint64_t report_seq = 0;   ///< per-device, strictly increasing
  double t_cal_max_s = 0.0;       ///< T^cal at f_max — Eq. (4)
  double t_com_s = 0.0;           ///< T^com — Eq. (7)
};

/// Service → device: report (device_id, report_seq) is applied.  Also sent
/// for duplicate/stale seqs so a lost ack never wedges the sender.
struct ReportAck {
  std::uint64_t device_id = 0;
  std::uint64_t report_seq = 0;
};

/// Controller → service: run one scheduling round.  controller_seq is the
/// idempotency key: the service processes each seq exactly once and
/// retransmits the cached response for the latest seq on duplicates.
struct DecisionRequest {
  std::uint64_t controller_seq = 0;  ///< strictly increasing, starts at 1
  std::uint64_t round = 0;           ///< round label echoed in the response
};

/// Service → controller: Γ_j and F_Γj for one round, index-aligned.
struct DecisionResponse {
  std::uint64_t controller_seq = 0;
  std::uint64_t round = 0;
  bool degraded = false;  ///< ingress overloaded: reports were shed since
                          ///< the previous decision or are still queued
  std::vector<std::size_t> selected;
  std::vector<double> frequencies_hz;
};

Frame encode(const DeviceReport& msg);
Frame encode(const ReportAck& msg);
Frame encode(const DecisionRequest& msg);
Frame encode(const DecisionResponse& msg);

DeviceReport decode_device_report(std::span<const std::uint8_t> payload);
ReportAck decode_report_ack(std::span<const std::uint8_t> payload);
DecisionRequest decode_decision_request(std::span<const std::uint8_t> payload);
DecisionResponse decode_decision_response(std::span<const std::uint8_t> payload);

}  // namespace helcfl::svc
