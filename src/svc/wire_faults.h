// Transport-level fault injection for the scheduler service (DESIGN.md §13).
//
// The service's failure handling (frame rejection, retry/backoff, dedup,
// lease expiry) is only trustworthy if every failure path is exercised
// in-process, deterministically.  WireFaultInjector plans per-frame faults
// — drop, corrupt (single byte xor), duplicate, delay (which reorders) —
// from an RNG forked per frame, mirroring mec::FaultInjector's
// per-(round,user) streams: a frame's fate depends only on the seed and
// its send index, never on timing or on other frames.
//
// FaultyLink is a simplex datagram wire built on the injector: send()
// stamps each (possibly faulted) copy with a delivery tick, advance()
// releases everything due in deterministic (tick, send order) order.
// Logical ticks, never wall clock — tests and the loadgen own time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "util/rng.h"

namespace helcfl::svc {

/// Per-frame fault probabilities.  All rates in [0, 1].  The default is a
/// perfect wire (no RNG consumed, frames pass through byte-identical).
struct WireFaultOptions {
  double drop_rate = 0.0;       ///< P(frame vanishes entirely)
  double corrupt_rate = 0.0;    ///< P(one byte of a delivery is bit-flipped)
  double duplicate_rate = 0.0;  ///< P(a second copy is delivered too)
  double delay_rate = 0.0;      ///< P(a delivery is postponed 1..max ticks)
  std::uint64_t max_delay_ticks = 8;  ///< worst-case postponement

  /// Throws std::invalid_argument with an actionable message on bad knobs.
  void validate() const;

  /// True when any fault can actually trigger.
  bool any_fault_possible() const {
    return drop_rate > 0.0 || corrupt_rate > 0.0 || duplicate_rate > 0.0 ||
           delay_rate > 0.0;
  }
};

/// Deterministic per-frame fault planner.
class WireFaultInjector {
 public:
  /// Inert injector: every frame passes through untouched.
  WireFaultInjector() = default;

  /// `base` should be a stream forked off the harness seed; each frame's
  /// faults are drawn from base.fork(frame index).
  explicit WireFaultInjector(const WireFaultOptions& options, util::Rng base);

  /// One delivered copy of a frame.
  struct Delivery {
    std::uint64_t delay_ticks = 0;  ///< extra ticks before delivery
    bool corrupted = false;
    std::size_t corrupt_index = 0;  ///< byte to flip (mod frame size)
    std::uint8_t corrupt_mask = 0;  ///< non-zero xor mask
  };

  /// The full fate of one frame.
  struct Plan {
    bool dropped = false;
    std::size_t copies = 0;  ///< 0 when dropped, else 1 or 2
    Delivery delivery[2];
  };

  /// Plans the next frame's faults (advances the frame counter).  The draw
  /// order inside the forked stream is fixed, so plans are reproducible
  /// frame-for-frame from the seed.
  Plan plan_frame();

  std::uint64_t frames_planned() const { return frame_counter_; }
  const WireFaultOptions& options() const { return options_; }

 private:
  WireFaultOptions options_;
  util::Rng base_;  ///< parent of the per-frame forks; never advanced
  std::uint64_t frame_counter_ = 0;
};

/// Simplex datagram link with injected faults and logical-tick latency.
class FaultyLink {
 public:
  /// Perfect link: zero latency, no faults.
  FaultyLink() = default;

  explicit FaultyLink(WireFaultInjector injector)
      : injector_(std::move(injector)) {}

  /// Queues `frame` for delivery, applying the injector's plan (drop,
  /// corruption, duplication, delay) at `now_tick`.
  void send(std::span<const std::uint8_t> frame, std::uint64_t now_tick);

  /// Pops every datagram due at or before `now_tick`, in (due tick, send
  /// order) order — delay faults therefore reorder across frames.
  std::vector<std::vector<std::uint8_t>> advance(std::uint64_t now_tick);

  std::size_t in_flight() const { return queue_.size(); }

  // --- fault accounting (tests and the loadgen report these) -------------
  std::uint64_t frames_sent() const { return sent_; }
  std::uint64_t frames_dropped() const { return dropped_; }
  std::uint64_t frames_corrupted() const { return corrupted_; }
  std::uint64_t frames_duplicated() const { return duplicated_; }
  std::uint64_t frames_delayed() const { return delayed_; }

 private:
  struct InFlight {
    std::uint64_t due_tick = 0;
    std::uint64_t order = 0;  ///< global send-copy index (ties broken FIFO)
    std::vector<std::uint8_t> bytes;

    bool operator>(const InFlight& other) const {
      if (due_tick != other.due_tick) return due_tick > other.due_tick;
      return order > other.order;
    }
  };

  WireFaultInjector injector_;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> queue_;
  std::uint64_t next_order_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
};

}  // namespace helcfl::svc
