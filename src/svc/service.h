// The long-running FLCC scheduler service (DESIGN.md §13).
//
// HELCFL's deliverable is the FLCC: the controller that consumes device
// state reports and answers with (selection, frequency) decisions.  This
// class is that controller as a deterministic, transport-agnostic state
// machine — the caller owns the wire (tests drive it through
// svc::FaultyLink, the loadgen through in-memory buffers) and the logical
// clock (a monotone tick counter; the service never reads wall time, so a
// whole protocol exchange is reproducible from seeds alone).
//
// Robustness model, designed for flaky mobile fleets:
//   * framed ingress — every datagram is decoded by the checksummed codec
//     in svc/frame.h; truncated/corrupt/unknown frames are counted and
//     dropped, never crash, and never desync later frames;
//   * dedup — device reports carry a per-device report_seq (stale and
//     duplicate seqs are re-acked but not re-applied), decision requests
//     carry a controller_seq processed exactly once (duplicates get the
//     cached response retransmitted, so a lost response never double-steps
//     the selector's α_q state);
//   * lease-based liveness — a device that has not reported within
//     lease_ticks is marked dead; the alive mask feeds the selector, whose
//     core::UtilityIndex parks the device and revives it on the next valid
//     report;
//   * load shedding — the ingress report queue is bounded; when full the
//     *oldest* queued report is shed (its sender retries, so nothing is
//     silently lost) and subsequent decisions carry a `degraded` flag until
//     a decision sees a clean queue;
//   * crash recovery — snapshot()/restore() capture the complete decision-
//     relevant state (selector counters + utility-index frame, per-device
//     dynamic state, dedup cursors, queued work) in the checkpoint header
//     discipline (magic/version/length/fnv1a); a restored service issues
//     byte-identical responses to one that never crashed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/helcfl_scheduler.h"
#include "obs/instruments.h"
#include "sched/scheduler.h"
#include "svc/frame.h"
#include "util/serial.h"

namespace helcfl::svc {

/// Thrown on construction/restore problems (bad options, malformed or
/// mismatched snapshot).  Wire-level garbage never throws — it is counted
/// and dropped.
class ServiceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ServiceOptions {
  // --- scheduling (forwarded to core::HelcflScheduler) -------------------
  double fraction = 0.1;    ///< user selection fraction C
  double eta = 0.9;         ///< Eq. (20) decay coefficient
  bool enable_dvfs = true;  ///< Algorithm-3 frequencies (else f_max)

  // --- liveness ----------------------------------------------------------
  /// A device is considered dead (parked, unselectable) when its last
  /// valid report is more than this many ticks old at poll() time.
  std::uint64_t lease_ticks = 64;

  // --- overload ----------------------------------------------------------
  /// Bounded ingress queue: reports beyond this many queued shed the
  /// oldest queued report (the shed sender's retry recovers it).
  std::size_t queue_capacity = 256;

  // --- crash recovery ----------------------------------------------------
  /// Write a snapshot to snapshot_path after every Nth decision (0 = off).
  std::uint64_t snapshot_every = 0;
  std::string snapshot_path;

  /// Throws ServiceError with an actionable message on bad knobs.
  void validate() const;
};

/// Aggregated service health counters (also mirrored into the attached
/// obs::Registry under the svc.* names in docs/OBSERVABILITY.md).
struct ServiceStats {
  std::uint64_t frames_accepted = 0;
  std::uint64_t frames_rejected = 0;   ///< codec-level rejections
  std::uint64_t reports_applied = 0;
  std::uint64_t reports_deduped = 0;   ///< duplicate/stale seq, re-acked
  std::uint64_t reports_invalid = 0;   ///< unknown device / bad delays
  std::uint64_t reports_shed = 0;      ///< dropped by the bounded queue
  std::uint64_t leases_expired = 0;
  std::uint64_t leases_revived = 0;
  std::uint64_t decisions = 0;
  std::uint64_t decisions_degraded = 0;
  std::uint64_t responses_retransmitted = 0;  ///< cached-response dedup hits
  std::uint64_t requests_stale = 0;    ///< controller_seq from the past/future
  std::uint64_t snapshots_written = 0;
};

/// See the header comment.  Single-threaded by design: the surrounding
/// server loop owns ordering (determinism requires it), and one instance
/// at Q = 1M sustains ~0.9M picks/sec (PR 6), so the scale-out unit is
/// the service process, not threads inside it.
class SchedulerService {
 public:
  /// `users` is the init-phase fleet contract (Algorithm 1 lines 1-2):
  /// static device parameters plus initial delays, index = device id.
  /// Reports update the delays; the device set itself is fixed.
  SchedulerService(std::vector<sched::UserInfo> users,
                   const ServiceOptions& options,
                   obs::Instruments instruments = {});

  // --- transport ---------------------------------------------------------

  /// Consumes one ingress datagram (any number of frames; a torn tail is
  /// rejected, not buffered).  Valid reports enter the bounded queue —
  /// shedding the oldest on overflow — and valid decision requests are
  /// staged.  Never throws on wire bytes.
  void ingest(std::span<const std::uint8_t> bytes, std::uint64_t now_tick);

  /// Consumes one already-decoded frame (stream transports run their own
  /// per-connection FrameDecoder — svc/transport.h — so re-encoding just
  /// to re-decode here would be waste).  Identical semantics to the
  /// datagram path for a validated frame.  Never throws on wire bytes.
  void ingest(const Frame& frame, std::uint64_t now_tick);

  /// Runs the service loop once at `now_tick`: expires leases, applies up
  /// to `budget` queued reports (emitting acks), then answers the staged
  /// decision request if any.  Responses accumulate in the outbox.
  void poll(std::uint64_t now_tick, std::size_t budget = SIZE_MAX);

  /// Encoded response frames ready for the wire, in emission order.
  /// Moves them out; the outbox is empty afterwards.
  std::vector<std::vector<std::uint8_t>> take_outbox();

  // --- crash recovery ----------------------------------------------------

  /// Complete state snapshot as a checksummed file image
  /// (magic "HSVS" | version | u64 size | u64 fnv1a | payload).
  std::vector<std::uint8_t> snapshot() const;

  /// Restores a snapshot() image onto an identically-constructed service
  /// (same fleet, same options).  Parses and validates everything before
  /// mutating any member; throws ServiceError on truncation, corruption,
  /// version or configuration mismatch — a failed restore leaves the
  /// service unchanged.
  void restore(std::span<const std::uint8_t> bytes);

  /// snapshot() to `path` atomically (tmp + rename).
  void write_snapshot(const std::string& path) const;

  /// restore() from `path`.
  void restore_file(const std::string& path);

  // --- introspection -----------------------------------------------------
  const ServiceStats& stats() const { return stats_; }
  std::size_t n_devices() const { return users_.size(); }
  std::size_t queue_depth() const { return report_queue_.size(); }
  bool device_alive(std::size_t device) const { return alive_[device] != 0; }
  std::uint64_t decisions_issued() const { return stats_.decisions; }
  const ServiceOptions& options() const { return options_; }

  static constexpr std::uint32_t kSnapshotMagic = 0x53565348;  ///< "HSVS" LE
  static constexpr std::uint32_t kSnapshotVersion = 1;

 private:
  void dispatch_frame(const Frame& frame, std::uint64_t now_tick);
  void handle_report(const DeviceReport& report, std::uint64_t now_tick);
  void handle_request(const DecisionRequest& request);
  void apply_report(const DeviceReport& report, std::uint64_t now_tick);
  void expire_leases(std::uint64_t now_tick);
  void answer_request(std::uint64_t now_tick);
  void emit(const Frame& frame);
  void count(std::string_view name, std::uint64_t delta = 1);
  void maybe_autosnapshot();

  ServiceOptions options_;
  obs::Instruments instruments_;
  core::HelcflScheduler scheduler_;

  // Fleet state: static device params from construction, delays updated by
  // reports.  alive_ is the lease-driven mask the FleetView borrows.
  std::vector<sched::UserInfo> users_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint64_t> lease_expiry_tick_;
  std::vector<std::uint64_t> last_report_seq_;  ///< 0 = none applied yet

  // Bounded ingress queue (decoded, not-yet-applied reports).
  std::deque<DeviceReport> report_queue_;

  // Controller session: exactly-once decision processing.
  std::uint64_t last_controller_seq_ = 0;
  std::vector<std::uint8_t> cached_response_;  ///< encoded frame for last seq
  std::optional<DecisionRequest> pending_request_;

  // Degradation latch: set by shedding, cleared by a decision that found
  // the queue empty at answer time.
  bool degraded_ = false;

  std::uint64_t now_tick_ = 0;  ///< latest tick seen (monotone)
  std::vector<std::vector<std::uint8_t>> outbox_;
  ServiceStats stats_;
};

}  // namespace helcfl::svc
