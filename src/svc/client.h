// Client-side endpoint of the scheduler-service protocol (DESIGN.md §13).
//
// A ServiceClient is the gateway half of the exchange: it transmits device
// state reports and decision requests as checksummed frames, and keeps
// retransmitting each one — exponential backoff with jitter, bounded
// attempts (svc::RetryPolicy) — until the service acknowledges it.  Acks
// are keyed (device_id, report_seq) and decision responses by
// controller_seq, so duplicated or reordered deliveries are absorbed
// here: a duplicate ack completes nothing twice, a stale response is
// dropped.
//
// Like the service, the client is transport-agnostic and wall-clock-free:
// the caller owns the wire and the logical tick.  poll(now) returns the
// encoded frames due for (re)transmission at `now`; deliver(bytes) feeds
// back whatever the wire produced (including corruption — decode errors
// are counted, never thrown).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "svc/frame.h"
#include "svc/retry.h"
#include "util/rng.h"

namespace helcfl::svc {

class ServiceClient {
 public:
  /// `rng` drives retry jitter only — it never influences *what* is sent,
  /// so two clients with different RNG streams still converge to the same
  /// applied state.  `first_controller_seq` seats the request numbering,
  /// letting a controller resume after the service recovered from a
  /// snapshot (seq continues where the snapshot left off).
  ServiceClient(const RetryOptions& retry, util::Rng rng,
                std::uint64_t first_controller_seq = 1);

  // --- egress --------------------------------------------------------------

  /// Stages a device report for transmission at `now_tick`.  It is
  /// retransmitted with backoff until the matching ack arrives or the
  /// attempt budget is exhausted.
  void send_report(const DeviceReport& report, std::uint64_t now_tick);

  /// Stages a decision request for round `round`, assigning the next
  /// controller_seq (returned).  Only one request may be outstanding;
  /// throws std::logic_error otherwise.
  std::uint64_t request_decision(std::uint64_t round, std::uint64_t now_tick);

  /// Encoded frames due for (re)transmission at `now_tick`, in a
  /// deterministic order (reports by (device, seq), then the request).
  /// Each returned frame has its backoff advanced; entries that exhausted
  /// their attempt budget are dropped and counted instead of returned.
  std::vector<std::vector<std::uint8_t>> poll(std::uint64_t now_tick);

  // --- ingress -------------------------------------------------------------

  /// Consumes one datagram from the wire.  Acks complete pending reports;
  /// the response matching the outstanding request is captured (pick it up
  /// with take_decision()).  Corrupt frames and stale/duplicate messages
  /// are counted and dropped — never thrown.
  void deliver(std::span<const std::uint8_t> bytes);

  /// The captured decision response, if the outstanding request completed.
  /// Moves it out; afterwards a new request may be staged.
  std::optional<DecisionResponse> take_decision();

  // --- introspection -------------------------------------------------------
  /// Nothing pending: every report acked, no request outstanding.
  bool idle() const {
    return pending_reports_.empty() && !pending_request_.has_value();
  }
  std::size_t pending_reports() const { return pending_reports_.size(); }
  bool awaiting_decision() const { return pending_request_.has_value(); }
  std::uint64_t next_controller_seq() const { return next_controller_seq_; }

  std::uint64_t retries() const { return retries_; }        ///< re-transmissions
  std::uint64_t exhausted() const { return exhausted_; }    ///< gave up
  std::uint64_t frames_rejected() const { return frames_rejected_; }
  std::uint64_t stale_messages() const { return stale_messages_; }

 private:
  struct Pending {
    std::vector<std::uint8_t> frame;  ///< encoded once, retransmitted as-is
    std::size_t attempts = 0;         ///< transmissions made so far
    std::uint64_t next_tx_tick = 0;
  };

  /// Transmits `entry` if due; returns false if it exhausted its budget
  /// (caller removes it).
  bool transmit_due(Pending& entry, std::uint64_t now_tick,
                    std::vector<std::vector<std::uint8_t>>& out);

  RetryPolicy policy_;
  util::Rng rng_;

  std::map<std::pair<std::uint64_t, std::uint64_t>, Pending> pending_reports_;
  std::optional<Pending> pending_request_;
  std::uint64_t pending_request_seq_ = 0;
  std::uint64_t next_controller_seq_;
  std::optional<DecisionResponse> decision_;

  std::uint64_t retries_ = 0;
  std::uint64_t exhausted_ = 0;
  std::uint64_t frames_rejected_ = 0;
  std::uint64_t stale_messages_ = 0;
};

}  // namespace helcfl::svc
