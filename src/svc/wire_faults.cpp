#include "svc/wire_faults.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace helcfl::svc {

namespace {

void check_rate(double value, const char* name) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(std::string("WireFaultOptions: ") + name +
                                " = " + std::to_string(value) +
                                " must be a probability in [0, 1]");
  }
}

}  // namespace

void WireFaultOptions::validate() const {
  check_rate(drop_rate, "drop_rate");
  check_rate(corrupt_rate, "corrupt_rate");
  check_rate(duplicate_rate, "duplicate_rate");
  check_rate(delay_rate, "delay_rate");
  if (delay_rate > 0.0 && max_delay_ticks == 0) {
    throw std::invalid_argument(
        "WireFaultOptions: max_delay_ticks must be >= 1 when delay_rate > 0");
  }
}

WireFaultInjector::WireFaultInjector(const WireFaultOptions& options,
                                     util::Rng base)
    : options_(options), base_(std::move(base)) {
  options_.validate();
}

WireFaultInjector::Plan WireFaultInjector::plan_frame() {
  const std::uint64_t index = frame_counter_++;
  Plan plan;
  if (!options_.any_fault_possible()) {
    plan.copies = 1;
    return plan;
  }
  // One independent stream per frame; the draw order below is fixed, so a
  // frame's fate is a pure function of (seed, send index).
  util::Rng rng = base_.fork(index);
  if (options_.drop_rate > 0.0 && rng.bernoulli(options_.drop_rate)) {
    plan.dropped = true;
    return plan;
  }
  plan.copies =
      (options_.duplicate_rate > 0.0 && rng.bernoulli(options_.duplicate_rate))
          ? 2
          : 1;
  for (std::size_t c = 0; c < plan.copies; ++c) {
    Delivery& d = plan.delivery[c];
    if (options_.corrupt_rate > 0.0 && rng.bernoulli(options_.corrupt_rate)) {
      d.corrupted = true;
      d.corrupt_index = static_cast<std::size_t>(rng.next_u64());
      d.corrupt_mask = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    if (options_.delay_rate > 0.0 && rng.bernoulli(options_.delay_rate)) {
      d.delay_ticks = static_cast<std::uint64_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(options_.max_delay_ticks)));
    }
  }
  return plan;
}

void FaultyLink::send(std::span<const std::uint8_t> frame,
                      std::uint64_t now_tick) {
  ++sent_;
  const WireFaultInjector::Plan plan = injector_.plan_frame();
  if (plan.dropped) {
    ++dropped_;
    return;
  }
  if (plan.copies == 2) ++duplicated_;
  for (std::size_t c = 0; c < plan.copies; ++c) {
    const WireFaultInjector::Delivery& d = plan.delivery[c];
    InFlight item;
    item.due_tick = now_tick + d.delay_ticks;
    item.order = next_order_++;
    item.bytes.assign(frame.begin(), frame.end());
    if (d.corrupted && !item.bytes.empty()) {
      item.bytes[d.corrupt_index % item.bytes.size()] ^= d.corrupt_mask;
      ++corrupted_;
    }
    if (d.delay_ticks > 0) ++delayed_;
    queue_.push(std::move(item));
  }
}

std::vector<std::vector<std::uint8_t>> FaultyLink::advance(
    std::uint64_t now_tick) {
  std::vector<std::vector<std::uint8_t>> due;
  while (!queue_.empty() && queue_.top().due_tick <= now_tick) {
    // priority_queue::top() is const; the copy is unavoidable but the
    // frames are small and the queues shallow.
    due.push_back(queue_.top().bytes);
    queue_.pop();
  }
  return due;
}

}  // namespace helcfl::svc
