#include "svc/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace helcfl::svc {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

void set_fd_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) fail("fcntl(F_SETFL)");
}

void set_tcp_nodelay(int fd) {
  // Frames are small and latency-bound (a decision round-trip is four
  // frames); Nagle would serialize the whole protocol on 40ms timers.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw TransportError("unix socket path is empty or longer than " +
                         std::to_string(sizeof(addr.sun_path) - 1) +
                         " bytes: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("'" + endpoint.host +
                         "' is not a numeric IPv4 address (tcp endpoints "
                         "take dotted-quad hosts, e.g. tcp:127.0.0.1:7777)");
  }
  return addr;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.kind = Kind::kUnix;
    endpoint.path = spec.substr(5);
    if (endpoint.path.empty()) {
      throw TransportError("endpoint '" + spec + "' is missing a path");
    }
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    endpoint.kind = Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      throw TransportError("endpoint '" + spec +
                           "' is not of the form tcp:HOST:PORT");
    }
    endpoint.host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long value = std::strtoul(port.c_str(), &end, 10);
    if (end == port.c_str() || *end != '\0' || value > 65535) {
      throw TransportError("endpoint '" + spec + "' has a bad port '" +
                           port + "'");
    }
    endpoint.port = static_cast<std::uint16_t>(value);
    return endpoint;
  }
  throw TransportError("endpoint '" + spec +
                       "' must start with tcp: or unix:");
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::listen_on(const Endpoint& endpoint, int backlog) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_address(endpoint.path);
    Socket sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!sock.valid()) fail("socket(AF_UNIX)");
    // A previous server's socket file would make bind fail with EADDRINUSE
    // even though nobody is listening; stale files are safe to remove.
    (void)::unlink(endpoint.path.c_str());
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      fail("bind(" + endpoint.to_string() + ")");
    }
    if (::listen(sock.fd(), backlog) < 0) fail("listen");
    sock.set_nonblocking(true);
    return sock;
  }
  const sockaddr_in addr = tcp_address(endpoint);
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) fail("socket(AF_INET)");
  const int one = 1;
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    fail("bind(" + endpoint.to_string() + ")");
  }
  if (::listen(sock.fd(), backlog) < 0) fail("listen");
  sock.set_nonblocking(true);
  return sock;
}

Socket Socket::connect_to(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_address(endpoint.path);
    Socket sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!sock.valid()) fail("socket(AF_UNIX)");
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      fail("connect(" + endpoint.to_string() + ")");
    }
    sock.set_nonblocking(true);
    return sock;
  }
  const sockaddr_in addr = tcp_address(endpoint);
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) fail("socket(AF_INET)");
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    fail("connect(" + endpoint.to_string() + ")");
  }
  set_tcp_nodelay(sock.fd());
  sock.set_nonblocking(true);
  return sock;
}

std::pair<Socket, Socket> Socket::stream_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) < 0) {
    fail("socketpair");
  }
  Socket a(fds[0]);
  Socket b(fds[1]);
  a.set_nonblocking(true);
  b.set_nonblocking(true);
  return {std::move(a), std::move(b)};
}

std::optional<Socket> Socket::accept_one() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return std::nullopt;
    }
    fail("accept");
  }
  Socket sock(fd);
  sock.set_nonblocking(true);
  // Harmless no-op on AF_UNIX (setsockopt error ignored).
  set_tcp_nodelay(fd);
  return sock;
}

Endpoint Socket::local_endpoint() const {
  sockaddr_storage storage{};
  socklen_t len = sizeof(storage);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&storage), &len) < 0) {
    fail("getsockname");
  }
  Endpoint endpoint;
  if (storage.ss_family == AF_UNIX) {
    const auto* addr = reinterpret_cast<const sockaddr_un*>(&storage);
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.path = addr->sun_path;
    return endpoint;
  }
  const auto* addr = reinterpret_cast<const sockaddr_in*>(&storage);
  endpoint.kind = Endpoint::Kind::kTcp;
  char host[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr->sin_addr, host, sizeof(host));
  endpoint.host = host;
  endpoint.port = ntohs(addr->sin_port);
  return endpoint;
}

void Socket::set_nonblocking(bool on) { set_fd_nonblocking(fd_, on); }

void Socket::set_send_buffer(int bytes) {
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) < 0) {
    fail("setsockopt(SO_SNDBUF)");
  }
}

void Socket::set_receive_buffer(int bytes) {
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) < 0) {
    fail("setsockopt(SO_RCVBUF)");
  }
}

FramedConn::FramedConn(Socket socket)
    : FramedConn(std::move(socket), Options()) {}

FramedConn::FramedConn(Socket socket, Options options)
    : socket_(std::move(socket)), options_(options) {}

FramedConn::IoStatus FramedConn::read_frames(std::vector<Frame>& out) {
  auto drain_decoder = [&] {
    Frame frame;
    FrameError error;
    for (;;) {
      switch (decoder_.next(frame, error)) {
        case FrameDecoder::Result::kFrame:
          out.push_back(std::move(frame));
          frame = Frame{};
          break;
        case FrameDecoder::Result::kRejected:
          break;  // counted in decoder_.stats(); resync already advanced
        case FrameDecoder::Result::kNeedMore:
          return;
      }
    }
  };

  std::vector<std::uint8_t> chunk(options_.read_chunk_bytes);
  for (;;) {
    const ssize_t n = ::recv(socket_.fd(), chunk.data(), chunk.size(), 0);
    if (n > 0) {
      bytes_read_ += static_cast<std::uint64_t>(n);
      decoder_.feed(
          std::span<const std::uint8_t>(chunk.data(), static_cast<std::size_t>(n)));
      if (static_cast<std::size_t>(n) < chunk.size()) {
        drain_decoder();
        return IoStatus::kOk;
      }
      continue;  // the socket may hold more than one chunk
    }
    if (n == 0) {
      drain_decoder();
      return IoStatus::kClosed;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      drain_decoder();
      return IoStatus::kOk;
    }
    if (errno == ECONNRESET) {
      drain_decoder();
      return IoStatus::kClosed;
    }
    drain_decoder();
    return IoStatus::kError;
  }
}

bool FramedConn::queue_frame(std::span<const std::uint8_t> frame_bytes) {
  if (output_backlog() + frame_bytes.size() > options_.max_output_bytes) {
    return false;
  }
  // Compact the sent prefix before it dominates the live bytes.
  if (out_head_ > 4096 && out_head_ > outbuf_.size() - out_head_) {
    outbuf_.erase(outbuf_.begin(),
                  outbuf_.begin() + static_cast<std::ptrdiff_t>(out_head_));
    out_head_ = 0;
  }
  outbuf_.insert(outbuf_.end(), frame_bytes.begin(), frame_bytes.end());
  return true;
}

FramedConn::IoStatus FramedConn::flush() {
  while (want_write()) {
    const std::size_t backlog = output_backlog();
    const ssize_t n = ::send(socket_.fd(), outbuf_.data() + out_head_, backlog,
                             MSG_NOSIGNAL);
    if (n > 0) {
      bytes_written_ += static_cast<std::uint64_t>(n);
      out_head_ += static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) < backlog) ++short_writes_;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return IoStatus::kOk;
    }
    if (errno == EPIPE || errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
  if (out_head_ == outbuf_.size() && !outbuf_.empty()) {
    outbuf_.clear();
    out_head_ = 0;
  }
  return IoStatus::kOk;
}

ClientChannel::ClientChannel(const Endpoint& endpoint)
    : ClientChannel(endpoint, FramedConn::Options()) {}

ClientChannel::ClientChannel(const Endpoint& endpoint,
                             FramedConn::Options options)
    : conn_(FramedConn(Socket::connect_to(endpoint), options)) {}

void ClientChannel::close() { conn_.reset(); }

bool ClientChannel::send_frame(std::span<const std::uint8_t> frame_bytes) {
  if (!conn_.has_value()) return false;
  if (!conn_->queue_frame(frame_bytes)) {
    // The client never queues unboundedly: wait for the socket to drain.
    // (Only reachable with a pathologically small max_output_bytes.)
    close();
    return false;
  }
  while (conn_->want_write()) {
    const FramedConn::IoStatus status = conn_->flush();
    if (status != FramedConn::IoStatus::kOk) {
      close();
      return false;
    }
    if (!conn_->want_write()) break;
    pollfd pfd{conn_->socket().fd(), POLLOUT, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/100) < 0 && errno != EINTR) {
      close();
      return false;
    }
  }
  return true;
}

std::size_t ClientChannel::poll_frames(std::vector<Frame>& out,
                                       int timeout_ms) {
  if (!conn_.has_value()) return 0;
  const std::size_t before = out.size();
  pollfd pfd{conn_->socket().fd(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0 && errno != EINTR) {
    close();
    return 0;
  }
  if (ready > 0) {
    const FramedConn::IoStatus status = conn_->read_frames(out);
    if (status != FramedConn::IoStatus::kOk) close();
  }
  return out.size() - before;
}

}  // namespace helcfl::svc
