#include "svc/frame.h"

#include <algorithm>
#include <cstring>

namespace helcfl::svc {

namespace {

/// Reads the fixed-width header fields from a buffer known to hold at
/// least kFrameHeaderBytes.
struct Header {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t type = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
};

Header parse_header(std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes.subspan(0, kFrameHeaderBytes));
  Header h;
  h.magic = in.u32();
  h.version = in.u32();
  h.type = in.u32();
  h.payload_size = in.u64();
  h.checksum = in.u64();
  return h;
}

const std::uint8_t kMagicBytes[4] = {
    static_cast<std::uint8_t>(kFrameMagic & 0xFF),
    static_cast<std::uint8_t>((kFrameMagic >> 8) & 0xFF),
    static_cast<std::uint8_t>((kFrameMagic >> 16) & 0xFF),
    static_cast<std::uint8_t>((kFrameMagic >> 24) & 0xFF),
};

}  // namespace

bool is_known_type(std::uint32_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kDeviceReport:
    case MsgType::kReportAck:
    case MsgType::kDecisionRequest:
    case MsgType::kDecisionResponse:
      return true;
  }
  return false;
}

std::string_view frame_error_name(FrameError error) {
  switch (error) {
    case FrameError::kBadMagic: return "bad_magic";
    case FrameError::kBadVersion: return "bad_version";
    case FrameError::kBadType: return "bad_type";
    case FrameError::kOversized: return "oversized";
    case FrameError::kChecksumMismatch: return "checksum_mismatch";
    case FrameError::kTruncated: return "truncated";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  util::ByteWriter out;
  out.u32(kFrameMagic);
  out.u32(kFrameVersion);
  out.u32(static_cast<std::uint32_t>(frame.type));
  out.u64(frame.payload.size());
  out.u64(util::fnv1a64(frame.payload));
  out.raw(frame.payload);
  return out.take();
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  // Compact lazily: only when the dead prefix dominates the live bytes, so
  // feed/next cycles stay amortized O(bytes).
  if (head_ > 4096 && head_ > buffer_.size() - head_) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::size_t FrameDecoder::skip_to_magic() {
  const std::size_t start = head_;
  while (buffer_.size() - head_ >= 4) {
    if (std::memcmp(buffer_.data() + head_, kMagicBytes, 4) == 0) break;
    ++head_;
  }
  // Fewer than 4 bytes left: they can only be a magic prefix — keep the
  // longest suffix that still matches, drop the rest.
  while (buffer_.size() - head_ < 4 && buffer_.size() > head_) {
    const std::size_t n = buffer_.size() - head_;
    if (std::memcmp(buffer_.data() + head_, kMagicBytes, n) == 0) break;
    ++head_;
  }
  return head_ - start;
}

FrameDecoder::Result FrameDecoder::next(Frame& out, FrameError& error) {
  // Hunt for a plausible frame start first so garbage never blocks the
  // header parse below.  Skipped bytes are charged to the *next* result:
  // if we had to skip, report one kBadMagic rejection for the whole gap.
  const std::size_t skipped = skip_to_magic();
  if (skipped > 0) {
    stats_.resync_bytes += skipped;
    ++stats_.rejected;
    error = FrameError::kBadMagic;
    return Result::kRejected;
  }

  const std::size_t available = buffer_.size() - head_;
  if (available < kFrameHeaderBytes) return Result::kNeedMore;

  const Header h =
      parse_header(std::span<const std::uint8_t>(buffer_).subspan(head_));

  // Header-level rejections consume the magic so the resync scan moves
  // past this frame start instead of spinning on it.
  if (h.version != kFrameVersion) {
    head_ += 4;
    ++stats_.rejected;
    error = FrameError::kBadVersion;
    return Result::kRejected;
  }
  if (h.payload_size > kMaxPayloadBytes) {
    head_ += 4;
    ++stats_.rejected;
    error = FrameError::kOversized;
    return Result::kRejected;
  }
  if (!is_known_type(h.type)) {
    head_ += 4;
    ++stats_.rejected;
    error = FrameError::kBadType;
    return Result::kRejected;
  }

  if (available < kFrameHeaderBytes + h.payload_size) return Result::kNeedMore;

  const std::span<const std::uint8_t> payload(
      buffer_.data() + head_ + kFrameHeaderBytes,
      static_cast<std::size_t>(h.payload_size));
  if (util::fnv1a64(payload) != h.checksum) {
    // The payload bits are untrustworthy, and so is the length that framed
    // them — consume only the magic and let the resync scan find the next
    // genuine frame start.
    head_ += 4;
    ++stats_.rejected;
    error = FrameError::kChecksumMismatch;
    return Result::kRejected;
  }

  out.type = static_cast<MsgType>(h.type);
  out.payload.assign(payload.begin(), payload.end());
  head_ += kFrameHeaderBytes + static_cast<std::size_t>(h.payload_size);
  ++stats_.frames;
  return Result::kFrame;
}

void FrameDecoder::reset() {
  buffer_.clear();
  head_ = 0;
}

void decode_datagram(std::span<const std::uint8_t> bytes,
                     std::vector<Frame>& out, std::vector<FrameError>& errors) {
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  FrameError error;
  for (;;) {
    switch (decoder.next(frame, error)) {
      case FrameDecoder::Result::kFrame:
        out.push_back(std::move(frame));
        frame = Frame{};
        break;
      case FrameDecoder::Result::kRejected:
        errors.push_back(error);
        break;
      case FrameDecoder::Result::kNeedMore:
        // A buffered residue is a torn frame: datagram transports will
        // never deliver the remainder.
        if (decoder.buffered() > 0) errors.push_back(FrameError::kTruncated);
        return;
    }
  }
}

// --- messages ------------------------------------------------------------

Frame encode(const DeviceReport& msg) {
  util::ByteWriter out;
  out.u64(msg.device_id);
  out.u64(msg.report_seq);
  out.f64(msg.t_cal_max_s);
  out.f64(msg.t_com_s);
  return Frame{MsgType::kDeviceReport, out.take()};
}

Frame encode(const ReportAck& msg) {
  util::ByteWriter out;
  out.u64(msg.device_id);
  out.u64(msg.report_seq);
  return Frame{MsgType::kReportAck, out.take()};
}

Frame encode(const DecisionRequest& msg) {
  util::ByteWriter out;
  out.u64(msg.controller_seq);
  out.u64(msg.round);
  return Frame{MsgType::kDecisionRequest, out.take()};
}

Frame encode(const DecisionResponse& msg) {
  util::ByteWriter out;
  out.u64(msg.controller_seq);
  out.u64(msg.round);
  out.boolean(msg.degraded);
  out.vec_size(msg.selected);
  out.vec_f64(msg.frequencies_hz);
  return Frame{MsgType::kDecisionResponse, out.take()};
}

DeviceReport decode_device_report(std::span<const std::uint8_t> payload) {
  util::ByteReader in(payload);
  DeviceReport msg;
  msg.device_id = in.u64();
  msg.report_seq = in.u64();
  msg.t_cal_max_s = in.f64();
  msg.t_com_s = in.f64();
  in.expect_end("DeviceReport");
  return msg;
}

ReportAck decode_report_ack(std::span<const std::uint8_t> payload) {
  util::ByteReader in(payload);
  ReportAck msg;
  msg.device_id = in.u64();
  msg.report_seq = in.u64();
  in.expect_end("ReportAck");
  return msg;
}

DecisionRequest decode_decision_request(std::span<const std::uint8_t> payload) {
  util::ByteReader in(payload);
  DecisionRequest msg;
  msg.controller_seq = in.u64();
  msg.round = in.u64();
  in.expect_end("DecisionRequest");
  return msg;
}

DecisionResponse decode_decision_response(std::span<const std::uint8_t> payload) {
  util::ByteReader in(payload);
  DecisionResponse msg;
  msg.controller_seq = in.u64();
  msg.round = in.u64();
  msg.degraded = in.boolean();
  msg.selected = in.vec_size();
  msg.frequencies_hz = in.vec_f64();
  if (msg.selected.size() != msg.frequencies_hz.size()) {
    throw util::SerialError(
        "DecisionResponse: selected/frequencies length mismatch (" +
        std::to_string(msg.selected.size()) + " vs " +
        std::to_string(msg.frequencies_hz.size()) + ")");
  }
  in.expect_end("DecisionResponse");
  return msg;
}

}  // namespace helcfl::svc
