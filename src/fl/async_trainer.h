// Event-driven async round engine (FedBuff-style; DESIGN.md §16,
// docs/ASYNC.md).
//
// fl/trainer.cpp advances time one round barrier at a time: every selected
// client must land (or be cut off) before the server aggregates, so a
// single straggler gates the whole cohort.  AsyncTrainer drops the barrier:
// a global clock advances event by event through fl::EventQueue — client
// compute completions, TDMA upload completions, crash burn-outs, and churn
// boundaries — and the server aggregates as soon as the first K updates
// arrive, applying the weighted-mean *delta* from each client's dispatch
// base, discounted by its staleness
// (weight ∝ num_samples / (1 + staleness)^β), and re-dispatching freed
// devices immediately through the existing SelectionStrategy machinery.
//
// The sync-equivalence contract: with mode = kSync this class reproduces
// FederatedTrainer *bitwise* — final weights, per-round metrics, the
// history CSV bytes, and the trace suffix — for every strategy, fault
// level, and thread count.  The sync path replays the barrier engine
// statement-for-statement with the arrival stage driven through the
// EventQueue (TDMA upload ends are strictly increasing in grant order, so
// the (time, seq) pop order *is* the grant order).  That equivalence is the
// spec, enforced by tests/test_async_differential.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "data/dataset.h"
#include "data/partition.h"
#include "fl/metrics.h"
#include "fl/trainer.h"
#include "mec/battery.h"
#include "mec/channel.h"
#include "mec/device.h"
#include "nn/sequential.h"
#include "sched/scheduler.h"

namespace helcfl::fl {

/// Knobs of the async engine, layered on top of TrainerOptions.
struct AsyncOptions {
  enum class Mode {
    kSync,   ///< barrier engine: bitwise identical to FederatedTrainer
    kAsync,  ///< event-driven: buffered staleness-discounted aggregation
  };

  Mode mode = Mode::kSync;

  /// FedBuff's K: the server aggregates once this many updates have
  /// arrived.  0 = the size of the first dispatched cohort (the semi-async
  /// regime: cohort-sized buffers without a barrier — slow devices keep
  /// computing across server steps instead of gating them).
  std::size_t buffer_k = 0;

  /// Staleness discount exponent β: an update trained on the model of
  /// `staleness` aggregations ago enters FedAvg with weight
  /// num_samples / (1 + staleness)^β.  0 disables discounting.
  double staleness_beta = 0.5;

  /// Bounded staleness: arrivals staler than this many server steps are
  /// dropped (their energy is wasted, `async.dropped_stale`).  0 = keep
  /// every arrival.
  std::size_t staleness_bound = 0;

  /// Throws std::invalid_argument on the first inconsistent knob.
  void validate() const;
};

/// Parses "sync" | "async" (helcfl_cli --mode); throws on anything else.
AsyncOptions::Mode parse_async_mode(const std::string& text);
std::string async_mode_name(AsyncOptions::Mode mode);

/// Discrete-event FL trainer over a simulated MEC fleet.  Construction
/// mirrors FederatedTrainer (same borrow contract: model, datasets,
/// devices, channel, and strategy must outlive the trainer).
class AsyncTrainer {
 public:
  AsyncTrainer(nn::Sequential& model, const data::Dataset& train,
               const data::Dataset& test, const data::Partition& partition,
               std::span<const mec::Device> devices, const mec::Channel& channel,
               sched::SelectionStrategy& strategy, TrainerOptions options,
               AsyncOptions async_options);

  /// Runs the engine to completion and returns the trace.  In sync mode
  /// one RoundRecord per barrier round (bitwise identical to
  /// FederatedTrainer::run()); in async mode one RoundRecord per server
  /// step (aggregation).  The final global model remains loaded in the
  /// model passed at construction.
  TrainingHistory run();

  /// Fleet view the strategy sees (useful for tests and benches).
  sched::FleetView fleet_view() const { return {users_}; }

 private:
  TrainingHistory run_sync_();
  TrainingHistory run_async_();

  nn::Sequential& model_;
  const data::Dataset& test_;
  std::span<const mec::Device> devices_;
  mec::Channel channel_;
  sched::SelectionStrategy& strategy_;
  TrainerOptions options_;
  AsyncOptions async_;
  std::vector<sched::UserInfo> users_;
  std::vector<data::Batch> user_data_;  ///< gathered once at construction
  mec::BatteryFleet batteries_;         ///< empty when batteries disabled
};

}  // namespace helcfl::fl
