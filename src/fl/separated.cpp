#include "fl/separated.h"

#include <algorithm>
#include <stdexcept>

#include "fl/server.h"
#include "mec/cost_model.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace helcfl::fl {

TrainingHistory train_separated(nn::Sequential& model, const data::Dataset& train,
                                const data::Dataset& test,
                                const data::Partition& partition,
                                std::span<const mec::Device> devices,
                                const SeparatedOptions& options) {
  if (devices.size() != partition.size()) {
    throw std::invalid_argument("train_separated: device/partition size mismatch");
  }
  const std::size_t q = devices.size();
  util::Rng rng(options.seed);

  // Every user starts from the same initialization (the weights currently
  // loaded in `model`), then diverges.
  const std::vector<float> init = nn::extract_parameters(model);
  std::vector<std::vector<float>> user_weights(q, init);

  std::vector<data::Batch> user_data;
  user_data.reserve(q);
  for (const auto& indices : partition) user_data.push_back(train.gather(indices));

  // Users whose models are averaged into the reported accuracy.
  std::vector<std::size_t> eval_users;
  if (options.eval_user_sample == 0 || options.eval_user_sample >= q) {
    eval_users.resize(q);
    for (std::size_t i = 0; i < q; ++i) eval_users[i] = i;
  } else {
    eval_users = rng.sample_without_replacement(q, options.eval_user_sample);
    std::sort(eval_users.begin(), eval_users.end());
  }

  TrainingHistory history;
  double cum_delay = 0.0;
  double cum_energy = 0.0;
  std::vector<std::size_t> everyone(q);
  for (std::size_t i = 0; i < q; ++i) everyone[i] = i;

  // Every sampled user's model is evaluated on the same test set each eval
  // round; gather its batches once and reuse them across users and rounds.
  const EvalPlan eval_plan = make_eval_plan(test, options.eval_batch);

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    double round_delay = 0.0;
    double round_energy = 0.0;
    double train_loss_sum = 0.0;
    for (std::size_t user = 0; user < q; ++user) {
      if (user_data[user].size() == 0) continue;
      util::Rng client_rng = rng.fork(round * q + user);
      ClientUpdate update = local_update(model, user_weights[user], user_data[user],
                                         options.client, client_rng);
      user_weights[user] = std::move(update.weights);
      train_loss_sum += update.train_loss;

      const mec::Device& device = devices[user];
      round_delay =
          std::max(round_delay, mec::compute_delay_s(device, device.f_max_hz));
      round_energy += mec::compute_energy_j(device, device.f_max_hz);
    }
    cum_delay += round_delay;
    cum_energy += round_energy;

    RoundRecord record;
    record.round = round;
    record.selected = everyone;
    record.round_delay_s = round_delay;
    record.round_energy_j = round_energy;
    record.cum_delay_s = cum_delay;
    record.cum_energy_j = cum_energy;
    record.train_loss = train_loss_sum / static_cast<double>(q);

    if (round % options.eval_every == 0 || round + 1 == options.max_rounds) {
      double acc_weighted = 0.0;
      double loss_weighted = 0.0;
      double total_weight = 0.0;
      for (const std::size_t user : eval_users) {
        const auto weight = static_cast<double>(user_data[user].size());
        if (weight == 0.0) continue;
        const Evaluation eval =
            evaluate(model, user_weights[user], eval_plan);
        acc_weighted += weight * eval.accuracy;
        loss_weighted += weight * eval.loss;
        total_weight += weight;
      }
      record.evaluated = total_weight > 0.0;
      if (record.evaluated) {
        record.test_accuracy = acc_weighted / total_weight;
        record.test_loss = loss_weighted / total_weight;
      }
    }
    history.add(std::move(record));
  }
  return history;
}

}  // namespace helcfl::fl
