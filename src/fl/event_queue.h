// Discrete-event core of the async round engine (DESIGN.md §16).
//
// The lockstep round loop of fl/trainer.cpp advances time one barrier at a
// time; the async engine (fl/async_trainer.h) instead advances a global
// clock event by event.  This queue is the single source of "what happens
// next": compute completions, TDMA upload completions, client faults, and
// availability churn all become timestamped events, totally ordered by
// (time_s, seq).  `seq` is assigned at push time and is unique, so the pop
// order is a *deterministic total order* — two events landing on the same
// instant resolve by insertion order, never by heap layout, thread timing,
// or pointer values.  That property is what lets the engine inherit the
// repo's bitwise-determinism contract (DESIGN.md §7) and what the sync
// degeneration proof in tests/test_async_differential.cpp rests on.
//
// Serialization is canonical: save_state() writes the events in pop order
// (not heap order), so two queues holding the same pending set produce the
// same bytes regardless of the push/pop history that built them, and a
// save → load → save round-trip is byte-identical.  load_state() parses and
// validates the full frame before mutating the queue (checkpoint
// discipline, docs/CHECKPOINT.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/serial.h"

namespace helcfl::fl {

/// What a queue entry describes.  The engine attaches meaning; the queue
/// only orders them.
enum class EventKind : std::uint8_t {
  kComputeFinish = 0,  ///< a client's local update completed
  kUploadFinish = 1,   ///< a client's TDMA upload (or final retry) ended
  kFault = 2,          ///< a client fault resolved (e.g. crash burn-out)
  kChurn = 3,          ///< an availability-churn boundary
};

/// Number of valid EventKind values (serialization bound check).
inline constexpr std::uint8_t kEventKindCount = 4;

/// One scheduled event.  `user`, `tag` and `value` are kind-specific
/// payload the engine interprets (device id, dispatch id, energy, ...).
struct Event {
  double time_s = 0.0;     ///< absolute simulation time
  std::uint64_t seq = 0;   ///< unique push order — the tie-break
  EventKind kind = EventKind::kComputeFinish;
  std::uint64_t user = 0;
  std::uint64_t tag = 0;
  double value = 0.0;

  /// The queue's total order: (time_s, seq) lexicographic.  seq is unique,
  /// so this is a strict total order (never "equal").
  bool before(const Event& other) const {
    if (time_s != other.time_s) return time_s < other.time_s;
    return seq < other.seq;
  }

  bool operator==(const Event&) const = default;
};

/// Deterministically ordered min-heap of events.
class EventQueue {
 public:
  /// Schedules an event and returns its assigned seq.  `time_s` must be
  /// finite and non-negative (NaN/inf would break the total order); throws
  /// std::invalid_argument otherwise.
  std::uint64_t push(double time_s, EventKind kind, std::uint64_t user,
                     std::uint64_t tag = 0, double value = 0.0);

  /// The earliest pending event.  Throws std::logic_error when empty.
  const Event& top() const;

  /// Removes and returns the earliest pending event.  Throws
  /// std::logic_error when empty.
  Event pop();

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Drops every pending event.  The seq counter keeps advancing — seqs
  /// are never reused within one queue's lifetime.
  void clear() { heap_.clear(); }

  /// The seq the next push() will assign.
  std::uint64_t next_seq() const { return next_seq_; }

  /// Pending events in pop order (the canonical order).  O(n log n);
  /// intended for serialization, tests, and debugging.
  std::vector<Event> sorted_events() const;

  /// Canonical serialization: next_seq, count, then every pending event in
  /// pop order.  Two queues with equal pending sets and next_seq produce
  /// identical bytes.
  void save_state(util::ByteWriter& out) const;

  /// Restores a frame written by save_state().  Validates everything —
  /// kind range, finite non-negative times, strictly increasing canonical
  /// order (which implies seq uniqueness), seq < next_seq — before
  /// mutating, so a throwing load leaves the queue unchanged.  Throws
  /// util::SerialError.
  void load_state(util::ByteReader& in);

 private:
  std::vector<Event> heap_;  ///< std::*_heap with `later` as the comparator
  std::uint64_t next_seq_ = 0;
};

}  // namespace helcfl::fl
