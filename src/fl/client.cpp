#include "fl/client.h"

#include <stdexcept>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace helcfl::fl {

ClientUpdate local_update(nn::Sequential& model, std::span<const float> global_weights,
                          const data::Batch& local_data, const ClientOptions& options,
                          util::Rng& rng) {
  if (local_data.size() == 0) {
    throw std::invalid_argument("local_update: empty local dataset");
  }
  if (options.local_steps == 0) {
    throw std::invalid_argument("local_update: local_steps must be >= 1");
  }

  nn::load_parameters(model, global_weights);
  nn::Sgd optimizer(
      {.learning_rate = options.learning_rate, .momentum = options.momentum});

  ClientUpdate update;
  update.num_samples = local_data.size();

  const std::size_t n = local_data.size();
  const bool full_batch = options.batch_size == 0 || options.batch_size >= n;

  for (std::size_t step = 0; step < options.local_steps; ++step) {
    const data::Batch* batch = &local_data;
    data::Batch minibatch;
    if (!full_batch) {
      // Sample a mini-batch without replacement from the local data.
      const auto picks = rng.sample_without_replacement(n, options.batch_size);
      const std::size_t sample_size = local_data.images.size() / n;
      minibatch.images = tensor::Tensor(tensor::Shape{
          picks.size(), local_data.images.shape()[1], local_data.images.shape()[2],
          local_data.images.shape()[3]});
      minibatch.labels.reserve(picks.size());
      for (std::size_t out = 0; out < picks.size(); ++out) {
        for (std::size_t j = 0; j < sample_size; ++j) {
          minibatch.images[out * sample_size + j] =
              local_data.images[picks[out] * sample_size + j];
        }
        minibatch.labels.push_back(local_data.labels[picks[out]]);
      }
      batch = &minibatch;
    }

    model.zero_grad();
    const tensor::Tensor logits = model.forward(batch->images, /*training=*/true);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, batch->labels);
    if (step == 0) update.train_loss = loss.loss;
    model.backward(loss.grad_logits);
    optimizer.step(model.params());
  }

  update.weights = nn::extract_parameters(model);
  return update;
}

}  // namespace helcfl::fl
