// SL baseline (Ahn et al. [4] as used in the paper's Section VII): each
// user trains its own model on its own data, with no aggregation and no
// model uploads.  The reported accuracy is the sample-weighted mean of the
// per-user models' test accuracy, which saturates far below FL because
// every model only ever sees one user's data.
#pragma once

#include <cstdint>
#include <span>

#include "data/dataset.h"
#include "data/partition.h"
#include "fl/client.h"
#include "fl/metrics.h"
#include "mec/device.h"
#include "nn/sequential.h"

namespace helcfl::fl {

struct SeparatedOptions {
  std::size_t max_rounds = 300;
  ClientOptions client;
  std::size_t eval_every = 10;      ///< evaluation is expensive: Q models
  std::size_t eval_user_sample = 0; ///< 0 = evaluate all users, else a fixed
                                    ///< random subset of this size
  std::size_t eval_batch = 256;
  std::uint64_t seed = 1;
};

/// Trains all users' separate models round by round.  Round delay is the
/// slowest user's compute time (everyone computes in parallel, nothing is
/// uploaded); round energy is the sum of compute energies at f_max.
TrainingHistory train_separated(nn::Sequential& model, const data::Dataset& train,
                                const data::Dataset& test,
                                const data::Partition& partition,
                                std::span<const mec::Device> devices,
                                const SeparatedOptions& options);

}  // namespace helcfl::fl
