// Server-side (FLCC) operations: FedAvg aggregation (Eq. 18) and global
// model evaluation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "nn/sequential.h"
#include "util/thread_pool.h"

namespace helcfl::fl {

/// One uploaded model with its FedAvg weight |D_q|.
struct WeightedModel {
  std::span<const float> weights;
  std::size_t num_samples = 0;
};

/// FedAvg (Eq. 18): sample-count-weighted average of the uploaded models.
/// All weight vectors must have equal length and the total sample count
/// must be positive.
std::vector<float> fedavg(std::span<const WeightedModel> uploads);

/// One buffered async arrival entering a staleness-discounted aggregation
/// (docs/ASYNC.md): the model a client trained `staleness` server steps ago,
/// weighed down by `discount` = 1 / (1 + staleness)^β.
struct DiscountedModel {
  std::span<const float> weights;
  std::size_t num_samples = 0;
  double discount = 1.0;  ///< in (0, 1]; 1 = a perfectly fresh update
};

/// FedBuff-style staleness-discounted FedAvg: each upload weighs
/// num_samples * discount.  With every discount == 1 the arithmetic
/// degenerates bitwise to fedavg() (identical doubles in identical order) —
/// the sync-equivalence contract of docs/ASYNC.md.  All weight vectors must
/// have equal length, every discount must be finite and non-negative, and
/// the *total* discounted weight must be positive: a buffer whose every
/// entry has been discounted to zero cannot define an average (the
/// division-by-zero guard the zero-survivor property tests exercise).
std::vector<float> fedavg_discounted(std::span<const DiscountedModel> uploads);

/// Evaluation result of a model on a dataset.
struct Evaluation {
  double loss = 0.0;
  double accuracy = 0.0;  ///< fraction correct in [0, 1]
};

/// The evaluation batches of one dataset, gathered once and reused.  The
/// trainer evaluates the same test set every eval round (and the separated
/// baseline evaluates every user's model on it), so re-gathering the batch
/// tensors per evaluation is pure waste — a plan materializes them once.
/// Batches cover [0, total) in order with the same boundaries the direct
/// evaluate() overloads use, so plan-based results are bitwise identical
/// to dataset-based ones for the same batch size.
struct EvalPlan {
  std::vector<data::Batch> batches;
  std::size_t total = 0;  ///< dataset size = sum of batch sizes
};

/// Gathers `dataset` into evaluation batches of `batch_size` (0 = one
/// batch of everything).  Throws on an empty dataset.
EvalPlan make_eval_plan(const data::Dataset& dataset, std::size_t batch_size);

/// Evaluates `model` (with `weights` loaded) over a pre-gathered plan.
/// Leaves `weights` loaded in the model.  Repeated calls against the same
/// model reuse its layer scratch (im2col columns, packed weight panels),
/// so steady-state evaluation allocates only activations.
Evaluation evaluate(nn::Sequential& model, std::span<const float> weights,
                    const EvalPlan& plan);

/// Evaluates `model` (with `weights` loaded) on `dataset`, batched to bound
/// peak memory.  Leaves `weights` loaded in the model.  Gathers the batches
/// on every call; callers that evaluate repeatedly should build an
/// EvalPlan once instead.
Evaluation evaluate(nn::Sequential& model, std::span<const float> weights,
                    const data::Dataset& dataset, std::size_t batch_size = 256);

/// Multi-threaded evaluate: distributes the evaluation batches over `pool`,
/// where worker i forwards through `replicas[i]` (one model per worker, so
/// layer caches never race).  `weights` is loaded into every replica first
/// and per-batch losses are reduced in batch order, making the result
/// bitwise identical to the sequential evaluate above for any worker count.
/// Requires replicas.size() == pool.worker_count(); with an inline pool
/// (worker_count() == 0) it requires exactly one replica and degrades to
/// the sequential path.
Evaluation evaluate_parallel(std::span<nn::Sequential* const> replicas,
                             std::span<const float> weights,
                             const EvalPlan& plan, util::ThreadPool& pool);

/// Dataset-gathering convenience over the plan-based overload above.
Evaluation evaluate_parallel(std::span<nn::Sequential* const> replicas,
                             std::span<const float> weights,
                             const data::Dataset& dataset, std::size_t batch_size,
                             util::ThreadPool& pool);

}  // namespace helcfl::fl
