#include "fl/async_trainer.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <future>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

#include "fl/checkpoint.h"
#include "fl/event_queue.h"
#include "fl/server.h"
#include "mec/cost_model.h"
#include "mec/tdma.h"
#include "nn/serialize.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace helcfl::fl {

namespace {

/// Sync path only: one client's round outcome, reduced in selection order
/// (mirrors the struct of the same name in fl/trainer.cpp — the sync path
/// here must stay a statement-for-statement port of FederatedTrainer).
struct ClientOutcome {
  ClientUpdate update;
  double compute_delay_s = 0.0;
  double upload_duration_s = 0.0;
  double energy_j = 0.0;
  std::vector<float> state;
  bool trained = false;
  bool upload_ok = true;
  std::size_t attempts = 0;
  bool accepted = false;
  bool dropped_late = false;
};

/// Async path: everything one dispatched client will produce, resolved when
/// its terminal event (upload finish or crash burn-out) pops.  The training
/// itself runs at dispatch time — only the *outcome* travels through the
/// event queue.
struct AsyncDispatch {
  std::uint64_t id = 0;          ///< dispatch counter; RNG/fault fork key
  std::size_t user = 0;
  std::size_t version = 0;       ///< model_version trained against
  double frequency_hz = 0.0;
  double dispatch_time_s = 0.0;
  double compute_end_s = 0.0;    ///< set when kComputeFinish pops
  double upload_start_s = 0.0;   ///< set at the TDMA grant
  double compute_delay_s = 0.0;
  double upload_duration_s = 0.0;
  double occupancy_s = 0.0;      ///< attempts x duration + backoff gaps
  std::size_t attempts = 0;
  bool upload_ok = true;
  bool trained = false;
  bool crashed = false;
  double crash_fraction = 0.0;
  double slowdown = 1.0;
  std::size_t failed_attempts = 0;
  double energy_j = 0.0;
  std::vector<float> weights;    ///< post-compression delta from the dispatch base
  double train_loss = 0.0;
  std::size_t num_samples = 0;
  std::vector<float> state;      ///< post-training persistent buffers
};

/// Async path: one update sitting in the server's aggregation buffer.
struct AsyncArrival {
  std::size_t user = 0;
  std::uint64_t dispatch_id = 0;
  std::size_t version = 0;       ///< staleness = model_version - version
  double frequency_hz = 0.0;
  std::vector<float> weights;    ///< delta from the version-`version` model
  double train_loss = 0.0;
  std::size_t num_samples = 0;
  std::vector<float> state;
  double energy_j = 0.0;
};

/// Per-server-step accumulators, reset at every aggregation.
struct StepAccum {
  std::vector<std::size_t> dispatched_users;
  std::vector<double> dispatched_freqs;
  std::vector<std::size_t> resolved_users;
  std::vector<double> resolved_freqs;
  /// 2 = arrival awaiting the step's quorum verdict; rewritten to 1/0 at
  /// aggregation time, when report_completion fires.
  std::vector<std::uint8_t> resolved_completed;
  std::size_t crashed = 0;
  std::size_t upload_failures = 0;
  std::size_t dropped_stale = 0;
  std::size_t retries = 0;
  double step_energy = 0.0;
  double step_wasted = 0.0;
};

void save_dispatch(util::ByteWriter& out, const AsyncDispatch& d) {
  out.u64(d.id);
  out.u64(static_cast<std::uint64_t>(d.user));
  out.u64(static_cast<std::uint64_t>(d.version));
  out.f64(d.frequency_hz);
  out.f64(d.dispatch_time_s);
  out.f64(d.compute_end_s);
  out.f64(d.upload_start_s);
  out.f64(d.compute_delay_s);
  out.f64(d.upload_duration_s);
  out.f64(d.occupancy_s);
  out.u64(static_cast<std::uint64_t>(d.attempts));
  out.boolean(d.upload_ok);
  out.boolean(d.trained);
  out.boolean(d.crashed);
  out.f64(d.crash_fraction);
  out.f64(d.slowdown);
  out.u64(static_cast<std::uint64_t>(d.failed_attempts));
  out.f64(d.energy_j);
  out.vec_f32(d.weights);
  out.f64(d.train_loss);
  out.u64(static_cast<std::uint64_t>(d.num_samples));
  out.vec_f32(d.state);
}

AsyncDispatch load_dispatch(util::ByteReader& in, std::size_t n_users) {
  AsyncDispatch d;
  d.id = in.u64();
  d.user = static_cast<std::size_t>(in.u64());
  d.version = static_cast<std::size_t>(in.u64());
  d.frequency_hz = in.f64();
  d.dispatch_time_s = in.f64();
  d.compute_end_s = in.f64();
  d.upload_start_s = in.f64();
  d.compute_delay_s = in.f64();
  d.upload_duration_s = in.f64();
  d.occupancy_s = in.f64();
  d.attempts = static_cast<std::size_t>(in.u64());
  d.upload_ok = in.boolean();
  d.trained = in.boolean();
  d.crashed = in.boolean();
  d.crash_fraction = in.f64();
  d.slowdown = in.f64();
  d.failed_attempts = static_cast<std::size_t>(in.u64());
  d.energy_j = in.f64();
  d.weights = in.vec_f32();
  d.train_loss = in.f64();
  d.num_samples = static_cast<std::size_t>(in.u64());
  d.state = in.vec_f32();
  if (d.user >= n_users) {
    throw CheckpointError("async state names in-flight user " +
                          std::to_string(d.user) + " of a " +
                          std::to_string(n_users) + "-user fleet");
  }
  if (!std::isfinite(d.dispatch_time_s) || !std::isfinite(d.energy_j)) {
    throw CheckpointError("async state holds a non-finite in-flight record");
  }
  return d;
}

void save_arrival(util::ByteWriter& out, const AsyncArrival& a) {
  out.u64(static_cast<std::uint64_t>(a.user));
  out.u64(a.dispatch_id);
  out.u64(static_cast<std::uint64_t>(a.version));
  out.f64(a.frequency_hz);
  out.vec_f32(a.weights);
  out.f64(a.train_loss);
  out.u64(static_cast<std::uint64_t>(a.num_samples));
  out.vec_f32(a.state);
  out.f64(a.energy_j);
}

AsyncArrival load_arrival(util::ByteReader& in, std::size_t n_users) {
  AsyncArrival a;
  a.user = static_cast<std::size_t>(in.u64());
  a.dispatch_id = in.u64();
  a.version = static_cast<std::size_t>(in.u64());
  a.frequency_hz = in.f64();
  a.weights = in.vec_f32();
  a.train_loss = in.f64();
  a.num_samples = static_cast<std::size_t>(in.u64());
  a.state = in.vec_f32();
  a.energy_j = in.f64();
  if (a.user >= n_users) {
    throw CheckpointError("async state buffers an update from user " +
                          std::to_string(a.user) + " of a " +
                          std::to_string(n_users) + "-user fleet");
  }
  return a;
}

/// Smallest possible wire sizes, used to cap adversarial counts before
/// reserving (same policy as fl/checkpoint.cpp's kMinRecordBytes).
constexpr std::size_t kMinDispatchBytes = 6 * 8 + 11 * 8 + 3 + 2 * 8;
constexpr std::size_t kMinArrivalBytes = 4 * 8 + 3 * 8 + 2 * 8;

}  // namespace

void AsyncOptions::validate() const {
  if (!std::isfinite(staleness_beta) || staleness_beta < 0.0) {
    throw std::invalid_argument(
        "AsyncOptions: staleness_beta = " + std::to_string(staleness_beta) +
        " must be finite and >= 0 (0 disables staleness discounting)");
  }
}

AsyncOptions::Mode parse_async_mode(const std::string& text) {
  if (text == "sync") return AsyncOptions::Mode::kSync;
  if (text == "async") return AsyncOptions::Mode::kAsync;
  throw std::invalid_argument("unknown engine mode '" + text +
                              "' (expected \"sync\" or \"async\")");
}

std::string async_mode_name(AsyncOptions::Mode mode) {
  return mode == AsyncOptions::Mode::kSync ? "sync" : "async";
}

AsyncTrainer::AsyncTrainer(nn::Sequential& model, const data::Dataset& train,
                           const data::Dataset& test,
                           const data::Partition& partition,
                           std::span<const mec::Device> devices,
                           const mec::Channel& channel,
                           sched::SelectionStrategy& strategy,
                           TrainerOptions options, AsyncOptions async_options)
    : model_(model),
      test_(test),
      devices_(devices),
      channel_(channel),
      strategy_(strategy),
      options_(options),
      async_(async_options) {
  options_.validate(devices.size());
  async_.validate();
  if (async_.mode == AsyncOptions::Mode::kAsync && async_.buffer_k > 0 &&
      async_.buffer_k < options_.min_clients) {
    throw std::invalid_argument(
        "AsyncTrainer: buffer_k = " + std::to_string(async_.buffer_k) +
        " is below min_clients = " + std::to_string(options_.min_clients) +
        "; every aggregation would fail its quorum and the model would never "
        "move");
  }
  if (devices.size() != partition.size()) {
    throw std::invalid_argument("AsyncTrainer: device/partition size mismatch");
  }
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (devices[i].num_samples != partition[i].size()) {
      throw std::invalid_argument(
          "AsyncTrainer: device " + std::to_string(i) + " declares " +
          std::to_string(devices[i].num_samples) + " samples but partition has " +
          std::to_string(partition[i].size()));
    }
  }

  users_ = sched::build_user_info(devices, channel_, options_.model_size_bits);

  user_data_.reserve(partition.size());
  for (const auto& indices : partition) {
    user_data_.push_back(train.gather(indices));
  }

  if (options_.battery_capacity_j > 0.0) {
    batteries_ = mec::BatteryFleet(devices.size(), options_.battery_capacity_j);
  }
}

TrainingHistory AsyncTrainer::run() {
  return async_.mode == AsyncOptions::Mode::kSync ? run_sync_() : run_async_();
}

// The barrier engine, kept a statement-for-statement port of
// FederatedTrainer::run() (fl/trainer.cpp) — every floating-point
// operation, RNG fork, reduction order, and trace emission matches, so the
// two produce bitwise-identical weights, CSV bytes, and traces
// (tests/test_async_differential.cpp).  The single structural change: the
// TDMA accept/drop stage is driven through fl::EventQueue.  Upload ends are
// non-decreasing in grant order and seq breaks ties by insertion order, so
// the (time, seq) pop order *is* the grant order and nothing observable
// moves.
TrainingHistory AsyncTrainer::run_sync_() {
  strategy_.reset();
  obs::Tracer* const tracer = options_.obs.tracer;
  obs::PhaseProfiler* const profiler = options_.obs.profiler;
  obs::Registry* const registry = options_.obs.registry;
  strategy_.set_instruments(options_.obs);

  const bool batteries_enabled = batteries_.size() > 0;
  util::Rng batch_rng(options_.seed);
  mec::FadingProcess fading(users_.size(), options_.fading,
                            util::Rng(options_.seed).fork(0xFAD1A6));
  mec::FaultInjector injector(users_.size(), options_.faults,
                              util::Rng(options_.seed).fork(0xFA0175));
  injector.set_tracer(tracer);
  const std::size_t max_attempts = 1 + options_.max_upload_retries;

  util::ThreadPool pool(util::ThreadPool::resolve_thread_count(options_.num_threads));
  std::vector<std::unique_ptr<nn::Sequential>> replicas;
  std::vector<nn::Sequential*> eval_models;
  replicas.reserve(pool.worker_count());
  for (std::size_t i = 0; i < pool.worker_count(); ++i) {
    replicas.push_back(std::make_unique<nn::Sequential>(model_));
    eval_models.push_back(replicas.back().get());
  }
  const bool has_state = nn::state_count(model_) > 0;

  std::vector<float> global_weights = nn::extract_parameters(model_);
  const EvalPlan eval_plan = make_eval_plan(test_, options_.eval_batch);
  TrainingHistory history;
  double cum_delay = 0.0;
  double cum_energy = 0.0;
  double cum_wasted_energy = 0.0;
  double best_accuracy = -1.0;
  std::uint64_t scratch_reported = tensor::scratch_realloc_count();

  std::size_t start_round = 0;
  if (!options_.resume_from.empty()) {
    const Checkpoint ckpt = Checkpoint::read_file(options_.resume_from);
    if (ckpt.n_users != users_.size()) {
      throw CheckpointError("'" + options_.resume_from + "': saved for " +
                            std::to_string(ckpt.n_users) +
                            " users, this trainer has " +
                            std::to_string(users_.size()));
    }
    if (ckpt.seed != options_.seed) {
      throw CheckpointError(
          "'" + options_.resume_from + "': saved under seed " +
          std::to_string(ckpt.seed) + ", this trainer uses seed " +
          std::to_string(options_.seed) +
          " — resuming would silently diverge from the original run");
    }
    if (ckpt.strategy_name != strategy_.name()) {
      throw CheckpointError("'" + options_.resume_from +
                            "': saved with strategy '" + ckpt.strategy_name +
                            "', this trainer uses '" + strategy_.name() + "'");
    }
    if (ckpt.global_weights.size() != global_weights.size()) {
      throw CheckpointError(
          "'" + options_.resume_from + "': saved model has " +
          std::to_string(ckpt.global_weights.size()) +
          " parameters, this trainer's model has " +
          std::to_string(global_weights.size()));
    }
    if (ckpt.model_state.size() != nn::state_count(model_)) {
      throw CheckpointError(
          "'" + options_.resume_from + "': saved model has " +
          std::to_string(ckpt.model_state.size()) +
          " persistent state scalars, this trainer's model has " +
          std::to_string(nn::state_count(model_)));
    }
    if (ckpt.batteries_enabled != batteries_enabled) {
      throw CheckpointError(
          "'" + options_.resume_from + "': saved with batteries " +
          std::string(ckpt.batteries_enabled ? "enabled" : "disabled") +
          ", this trainer has them " +
          std::string(batteries_enabled ? "enabled" : "disabled"));
    }
    if (ckpt.async_enabled) {
      throw CheckpointError(
          "'" + options_.resume_from +
          "': saved mid-flight by the async engine; resume it with an "
          "async-mode fl::AsyncTrainer (docs/ASYNC.md)");
    }
    mec::BatteryFleet restored_batteries;
    try {
      util::ByteReader injector_in(ckpt.injector_state);
      injector.load_state(injector_in);
      injector_in.expect_end("checkpoint injector state");
      util::ByteReader fading_in(ckpt.fading_state);
      fading.load_state(fading_in);
      fading_in.expect_end("checkpoint fading state");
      batch_rng.set_state(ckpt.batch_rng);
      if (batteries_enabled) {
        restored_batteries = batteries_;
        util::ByteReader battery_in(ckpt.battery_state);
        restored_batteries.load_state(battery_in);
        battery_in.expect_end("checkpoint battery state");
      }
      util::ByteReader strategy_in(ckpt.strategy_state);
      strategy_.load_state(strategy_in);
      strategy_in.expect_end("checkpoint strategy state");
    } catch (const std::exception& error) {
      throw CheckpointError("'" + options_.resume_from + "': " + error.what());
    }
    if (batteries_enabled) batteries_ = std::move(restored_batteries);
    if (!ckpt.model_state.empty()) nn::load_state(model_, ckpt.model_state);
    global_weights = ckpt.global_weights;
    for (const RoundRecord& record : ckpt.records) history.add(record);
    cum_delay = ckpt.cum_delay_s;
    cum_energy = ckpt.cum_energy_j;
    cum_wasted_energy = ckpt.cum_wasted_energy_j;
    best_accuracy = ckpt.best_accuracy;
    start_round = static_cast<std::size_t>(ckpt.next_round);
  }

  if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
    tracer->emit(obs::TraceLevel::kRound, "run_start",
                 {{"schema", std::size_t{1}},
                  {"strategy", strategy_.name()},
                  {"users", users_.size()},
                  {"max_rounds", options_.max_rounds},
                  {"threads", pool.worker_count() == 0 ? std::size_t{1}
                                                       : pool.worker_count()},
                  {"seed", options_.seed},
                  {"faults_enabled", injector.active()}});
  }
  if (start_round > 0 && tracer != nullptr &&
      tracer->enabled(obs::TraceLevel::kRound)) {
    tracer->emit(obs::TraceLevel::kRound, "checkpoint_resume",
                 {{"round", start_round},
                  {"records", history.size()},
                  {"cum_delay_s", cum_delay},
                  {"cum_energy_j", cum_energy}});
  }

  const auto maybe_write_checkpoint = [&](std::size_t round) {
    if (options_.checkpoint_every == 0) return;
    const std::size_t completed = round + 1;
    if (completed % options_.checkpoint_every != 0) return;
    obs::ScopedSpan span(profiler, "checkpoint", static_cast<std::int64_t>(round));
    Checkpoint ckpt;
    ckpt.seed = options_.seed;
    ckpt.n_users = users_.size();
    ckpt.next_round = completed;
    ckpt.cum_delay_s = cum_delay;
    ckpt.cum_energy_j = cum_energy;
    ckpt.cum_wasted_energy_j = cum_wasted_energy;
    ckpt.best_accuracy = best_accuracy;
    ckpt.trace_seq = tracer != nullptr ? tracer->event_count() : 0;
    ckpt.global_weights = global_weights;
    if (has_state) ckpt.model_state = nn::extract_state(model_);
    ckpt.batch_rng = batch_rng.state();
    ckpt.strategy_name = strategy_.name();
    {
      util::ByteWriter writer;
      strategy_.save_state(writer);
      ckpt.strategy_state = writer.take();
    }
    {
      util::ByteWriter writer;
      injector.save_state(writer);
      ckpt.injector_state = writer.take();
    }
    {
      util::ByteWriter writer;
      fading.save_state(writer);
      ckpt.fading_state = writer.take();
    }
    ckpt.batteries_enabled = batteries_enabled;
    if (batteries_enabled) {
      util::ByteWriter writer;
      batteries_.save_state(writer);
      ckpt.battery_state = writer.take();
    }
    ckpt.records = history.rounds();
    std::string path = options_.checkpoint_path;
    constexpr std::string_view kToken = "{round}";
    for (std::size_t pos = path.find(kToken); pos != std::string::npos;
         pos = path.find(kToken, pos)) {
      const std::string value = std::to_string(completed);
      path.replace(pos, kToken.size(), value);
      pos += value.size();
    }
    ckpt.write_file(path);
    if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
      tracer->emit(obs::TraceLevel::kRound, "checkpoint_write",
                   {{"round", round},
                    {"path", path},
                    {"records", history.size()}});
    }
  };

  for (std::size_t round = start_round; round < options_.max_rounds; ++round) {
    if (batteries_enabled && batteries_.alive_count() == 0) {
      util::log_info("AsyncTrainer[sync]: whole fleet depleted after round " +
                     std::to_string(round));
      break;
    }

    injector.begin_round();

    sched::FleetView fleet{users_};
    std::vector<std::uint8_t> selectable;
    const std::span<const std::uint8_t> churn_mask = injector.availability();
    if (batteries_enabled && !churn_mask.empty()) {
      const std::span<const std::uint8_t> battery_mask = batteries_.alive_mask();
      selectable.resize(users_.size());
      for (std::size_t i = 0; i < users_.size(); ++i) {
        selectable[i] = battery_mask[i] != 0 && churn_mask[i] != 0 ? 1 : 0;
      }
      fleet.alive = selectable;
    } else if (batteries_enabled) {
      fleet.alive = batteries_.alive_mask();
    } else if (!churn_mask.empty()) {
      fleet.alive = churn_mask;
    }
    const std::size_t available = fleet.alive_count();

    if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
      tracer->emit(obs::TraceLevel::kRound, "round_start",
                   {{"round", round},
                    {"available", available},
                    {"alive", batteries_enabled ? batteries_.alive_count()
                                                : users_.size()}});
    }

    sched::Decision decision;
    {
      obs::ScopedSpan selection_span(profiler, "selection",
                                     static_cast<std::int64_t>(round));
      if (available > 0) decision = strategy_.decide(fleet, round);
    }
    if (decision.selected.empty()) {
      if (injector.active() && injector.away_count() > 0) {
        RoundRecord skipped;
        skipped.round = round;
        skipped.quorum_failed = true;
        skipped.cum_delay_s = cum_delay;
        skipped.cum_energy_j = cum_energy;
        skipped.alive_users =
            batteries_enabled ? batteries_.alive_count() : users_.size();
        skipped.available_users = available;
        history.add(std::move(skipped));
        if (registry != nullptr) registry->add("rounds.skipped");
        if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
          tracer->emit(obs::TraceLevel::kRound, "round_end",
                       {{"round", round},
                        {"selected", std::size_t{0}},
                        {"survivors", std::size_t{0}},
                        {"quorum_failed", true},
                        {"cum_delay_s", cum_delay},
                        {"cum_energy_j", cum_energy}});
        }
        maybe_write_checkpoint(round);
        continue;
      }
      util::log_info("AsyncTrainer[sync]: strategy returned no users; stopping");
      break;
    }
    if (decision.selected.size() != decision.frequencies_hz.size()) {
      throw std::logic_error("AsyncTrainer: strategy returned a bad decision");
    }

    fading.step();

    const std::size_t cohort = decision.selected.size();
    std::vector<double> fade_multipliers(cohort, 1.0);
    std::vector<util::Rng> client_rngs;
    client_rngs.reserve(cohort);
    std::vector<mec::ClientFaults> client_faults(cohort);
    for (std::size_t k = 0; k < cohort; ++k) {
      const std::size_t user = decision.selected[k];
      const double f = decision.frequencies_hz[k];
      if (!fleet.is_alive(user)) {
        throw std::logic_error(
            "AsyncTrainer: strategy selected an unavailable device");
      }
      const mec::Device& device = devices_[user];
      if (f < device.f_min_hz - 1e-6 || f > device.f_max_hz + 1e-6) {
        throw std::logic_error("AsyncTrainer: frequency outside DVFS range");
      }
      fade_multipliers[k] = fading.multiplier(user);
      client_rngs.push_back(batch_rng.fork(round * users_.size() + user));
      if (injector.active()) {
        client_faults[k] = injector.draw(round, user, max_attempts);
      }
    }

    const std::vector<float> round_state =
        has_state ? nn::extract_state(model_) : std::vector<float>{};

    std::vector<ClientOutcome> outcomes(cohort);
    auto run_client = [&](std::size_t k) {
      const std::size_t user = decision.selected[k];
      obs::ScopedSpan client_span(profiler, "client",
                                  static_cast<std::int64_t>(round),
                                  static_cast<std::int64_t>(user),
                                  obs::TraceLevel::kDebug);
      const double f = decision.frequencies_hz[k];
      const mec::ClientFaults faults = client_faults[k];
      const mec::Device& device = devices_[user];

      if (faults.crashed) {
        ClientOutcome outcome;
        outcome.compute_delay_s =
            mec::compute_delay_s(device, f) * faults.slowdown * faults.crash_fraction;
        outcome.energy_j = mec::compute_energy_j(device, f) * faults.crash_fraction;
        outcomes[k] = std::move(outcome);
        return;
      }

      const std::size_t worker = util::ThreadPool::worker_index();
      nn::Sequential& model =
          worker == util::ThreadPool::npos ? model_ : *replicas[worker];
      if (has_state) nn::load_state(model, round_state);

      util::Rng client_rng = client_rngs[k];
      ClientOutcome outcome;
      outcome.trained = true;
      outcome.update = local_update(model, global_weights, user_data_[user],
                                    options_.client, client_rng);

      const nn::CompressedModel compressed =
          nn::compress(outcome.update.weights, options_.compression);
      const double compression_ratio =
          static_cast<double>(compressed.wire_bits) /
          (32.0 * static_cast<double>(outcome.update.weights.size()));
      const double wire_bits = options_.model_size_bits * compression_ratio;
      outcome.update.weights = std::move(compressed.reconstructed);

      mec::Device faded = device;
      faded.channel_gain_sq *= fade_multipliers[k];

      outcome.compute_delay_s = mec::compute_delay_s(device, f) * faults.slowdown;
      outcome.upload_duration_s = mec::upload_delay_s(faded, channel_, wire_bits);
      outcome.attempts = faults.attempts();
      outcome.upload_ok = faults.upload_ok;
      outcome.energy_j = mec::compute_energy_j(device, f) +
                         static_cast<double>(outcome.attempts) *
                             mec::upload_energy_j(faded, channel_, wire_bits);
      if (has_state) outcome.state = nn::extract_state(model);
      outcomes[k] = std::move(outcome);
    };

    obs::ScopedSpan training_span(profiler, "local_training",
                                  static_cast<std::int64_t>(round));
    if (pool.worker_count() == 0) {
      for (std::size_t k = 0; k < cohort; ++k) run_client(k);
    } else {
      std::vector<std::future<void>> futures;
      futures.reserve(cohort);
      for (std::size_t k = 0; k < cohort; ++k) {
        futures.push_back(pool.submit([&run_client, k] { run_client(k); }));
      }
      std::string failures;
      std::size_t failure_count = 0;
      for (std::size_t k = 0; k < futures.size(); ++k) {
        try {
          futures[k].get();
        } catch (const std::exception& error) {
          ++failure_count;
          if (!failures.empty()) failures += "; ";
          failures += "client " + std::to_string(k) + " (user " +
                      std::to_string(decision.selected[k]) + "): " + error.what();
        } catch (...) {
          ++failure_count;
          if (!failures.empty()) failures += "; ";
          failures += "client " + std::to_string(k) + " (user " +
                      std::to_string(decision.selected[k]) + "): unknown exception";
        }
      }
      if (failure_count > 0) {
        throw std::runtime_error(
            "AsyncTrainer: " + std::to_string(failure_count) +
            " client task(s) failed in round " + std::to_string(round) + ": " +
            failures);
      }
    }
    training_span.finish();

    std::vector<std::size_t> transmitting;
    std::vector<double> tx_compute_delays;
    std::vector<double> tx_occupancies;
    for (std::size_t k = 0; k < cohort; ++k) {
      if (!outcomes[k].trained) continue;
      transmitting.push_back(k);
      tx_compute_delays.push_back(outcomes[k].compute_delay_s);
      const double occupancy =
          outcomes[k].attempts <= 1
              ? outcomes[k].upload_duration_s
              : static_cast<double>(outcomes[k].attempts) *
                        outcomes[k].upload_duration_s +
                    static_cast<double>(outcomes[k].attempts - 1) *
                        options_.retry_backoff_s;
      tx_occupancies.push_back(occupancy);
    }
    const mec::TdmaSchedule schedule =
        mec::schedule_uploads(tx_compute_delays, tx_occupancies);

    // The one structural departure from fl/trainer.cpp: arrivals flow
    // through the event queue.  One kUploadFinish per granted slot, pushed
    // in grant order; upload_end is non-decreasing in grant order, so the
    // deterministic (time, seq) pop order reproduces the grant order
    // exactly and the accept/drop pass below is bitwise unchanged.
    const double cutoff = options_.straggler_cutoff_s;
    const bool trace_tdma =
        tracer != nullptr && tracer->enabled(obs::TraceLevel::kDecision);
    EventQueue arrivals;
    for (std::size_t i = 0; i < schedule.slots.size(); ++i) {
      const mec::UploadSlot& slot = schedule.slots[i];
      arrivals.push(slot.upload_end, EventKind::kUploadFinish,
                    decision.selected[transmitting[slot.index]], /*tag=*/i);
    }
    while (!arrivals.empty()) {
      const Event event = arrivals.pop();
      const mec::UploadSlot& slot = schedule.slots[event.tag];
      const std::size_t k = transmitting[slot.index];
      ClientOutcome& outcome = outcomes[k];
      if (outcome.upload_ok) {
        if (slot.upload_end <= cutoff) {
          outcome.accepted = true;
        } else {
          outcome.dropped_late = true;
        }
      }
      if (trace_tdma) {
        tracer->emit(obs::TraceLevel::kDecision, "tdma",
                     {{"round", round},
                      {"user", decision.selected[k]},
                      {"attempts", outcome.attempts},
                      {"compute_end_s", slot.compute_end},
                      {"upload_start_s", slot.upload_start},
                      {"upload_end_s", slot.upload_end},
                      {"slack_s", slot.slack_s},
                      {"accepted", outcome.accepted},
                      {"dropped_late", outcome.dropped_late}});
      }
    }
    const double round_delay = std::min(schedule.round_delay_s, cutoff);

    if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
      for (std::size_t k = 0; k < cohort; ++k) {
        const std::size_t user = decision.selected[k];
        const mec::ClientFaults& faults = client_faults[k];
        if (faults.crashed) {
          tracer->emit(obs::TraceLevel::kRound, "fault",
                       {{"round", round},
                        {"user", user},
                        {"kind", "crash"},
                        {"crash_fraction", faults.crash_fraction}});
        }
        if (faults.slowdown > 1.0) {
          tracer->emit(obs::TraceLevel::kRound, "fault",
                       {{"round", round},
                        {"user", user},
                        {"kind", "straggler"},
                        {"slowdown", faults.slowdown}});
        }
        if (faults.failed_attempts > 0) {
          tracer->emit(obs::TraceLevel::kRound, "fault",
                       {{"round", round},
                        {"user", user},
                        {"kind", "upload_failure"},
                        {"failed_attempts", faults.failed_attempts},
                        {"upload_ok", faults.upload_ok}});
        }
        if (outcomes[k].dropped_late) {
          tracer->emit(obs::TraceLevel::kRound, "fault",
                       {{"round", round},
                        {"user", user},
                        {"kind", "dropped_late"},
                        {"cutoff_s", cutoff}});
        }
      }
    }

    obs::ScopedSpan aggregation_span(profiler, "aggregation",
                                     static_cast<std::int64_t>(round));
    std::vector<double> user_energies;
    std::vector<double> client_losses;
    std::vector<std::size_t> survivors;
    double round_energy = 0.0;
    double train_loss_sum = 0.0;
    std::size_t trained_count = 0;
    std::size_t crashed_count = 0;
    std::size_t upload_failure_count = 0;
    std::size_t dropped_late_count = 0;
    std::size_t retry_count = 0;
    double wasted_energy = 0.0;
    for (std::size_t k = 0; k < cohort; ++k) {
      const ClientOutcome& outcome = outcomes[k];
      if (outcome.trained) {
        train_loss_sum += outcome.update.train_loss;
        ++trained_count;
        retry_count += outcome.attempts > 0 ? outcome.attempts - 1 : 0;
        if (!outcome.upload_ok) ++upload_failure_count;
        if (outcome.dropped_late) ++dropped_late_count;
        if (outcome.accepted) survivors.push_back(k);
      } else {
        ++crashed_count;
      }
      user_energies.push_back(outcome.energy_j);
      round_energy += outcome.energy_j;
      if (!outcome.accepted) wasted_energy += outcome.energy_j;
    }

    const bool quorum_met = survivors.size() >= options_.min_clients;
    if (!quorum_met && tracer != nullptr &&
        tracer->enabled(obs::TraceLevel::kRound)) {
      tracer->emit(obs::TraceLevel::kRound, "quorum",
                   {{"round", round},
                    {"survivors", survivors.size()},
                    {"min_clients", options_.min_clients}});
    }
    if (quorum_met) {
      std::vector<WeightedModel> uploads;
      uploads.reserve(survivors.size());
      for (const std::size_t k : survivors) {
        uploads.push_back({outcomes[k].update.weights, outcomes[k].update.num_samples});
      }
      global_weights = fedavg(uploads);
      for (const std::size_t k : survivors) {
        client_losses.push_back(outcomes[k].update.train_loss);
      }
      if (survivors.size() == cohort) {
        strategy_.observe(round, decision, client_losses);
      } else {
        sched::Decision survivor_decision;
        survivor_decision.selected.reserve(survivors.size());
        survivor_decision.frequencies_hz.reserve(survivors.size());
        for (const std::size_t k : survivors) {
          survivor_decision.selected.push_back(decision.selected[k]);
          survivor_decision.frequencies_hz.push_back(decision.frequencies_hz[k]);
        }
        strategy_.observe(round, survivor_decision, client_losses);
      }
      if (has_state) nn::load_state(model_, outcomes[survivors.back()].state);
    } else {
      wasted_energy = round_energy;
    }

    std::vector<std::uint8_t> completed(cohort, 0);
    if (quorum_met) {
      for (const std::size_t k : survivors) completed[k] = 1;
    }
    strategy_.report_completion(round, decision, completed);
    aggregation_span.finish();

    if (batteries_enabled) {
      for (std::size_t k = 0; k < cohort; ++k) {
        batteries_.drain(decision.selected[k], user_energies[k]);
      }
    }

    cum_delay += round_delay;
    cum_energy += round_energy;

    RoundRecord record;
    record.round = round;
    record.selected = decision.selected;
    record.round_delay_s = round_delay;
    record.round_energy_j = round_energy;
    record.cum_delay_s = cum_delay;
    record.cum_energy_j = cum_energy;
    record.train_loss =
        trained_count > 0 ? train_loss_sum / static_cast<double>(trained_count) : 0.0;
    record.alive_users =
        batteries_enabled ? batteries_.alive_count() : users_.size();
    record.available_users = available;
    if (quorum_met) {
      record.aggregated.reserve(survivors.size());
      for (const std::size_t k : survivors) {
        record.aggregated.push_back(decision.selected[k]);
      }
    }
    record.survivors = record.aggregated.size();
    record.crashed = crashed_count;
    record.upload_failures = upload_failure_count;
    record.dropped_late = dropped_late_count;
    record.retries = retry_count;
    record.quorum_failed = !quorum_met;
    record.wasted_energy_j = wasted_energy;

    const bool last_round = round + 1 == options_.max_rounds;
    const bool over_deadline = cum_delay > options_.deadline_s;
    if (round % options_.eval_every == 0 || last_round || over_deadline) {
      obs::ScopedSpan eval_span(profiler, "evaluation",
                                static_cast<std::int64_t>(round));
      Evaluation eval;
      if (pool.worker_count() == 0) {
        eval = evaluate(model_, global_weights, eval_plan);
      } else {
        if (has_state) {
          const std::vector<float> eval_state = nn::extract_state(model_);
          for (nn::Sequential* replica : eval_models) {
            nn::load_state(*replica, eval_state);
          }
        }
        eval = evaluate_parallel(eval_models, global_weights, eval_plan, pool);
      }
      record.evaluated = true;
      record.test_loss = eval.loss;
      record.test_accuracy = eval.accuracy;
    }
    const bool target_reached = record.evaluated && options_.target_accuracy >= 0.0 &&
                                record.test_accuracy >= options_.target_accuracy;

    cum_wasted_energy += wasted_energy;
    if (registry != nullptr) {
      registry->add("rounds.completed");
      registry->add("clients.selected", cohort);
      registry->add("clients.trained", trained_count);
      registry->add("clients.crashed", crashed_count);
      registry->add("clients.dropped_late", dropped_late_count);
      registry->add("clients.aggregated", record.survivors);
      registry->add("uploads.failed", upload_failure_count);
      registry->add("uploads.retries", retry_count);
      if (!quorum_met) registry->add("rounds.quorum_failed");
      const std::uint64_t scratch_now = tensor::scratch_realloc_count();
      registry->add("kernel.scratch_reallocs", scratch_now - scratch_reported);
      scratch_reported = scratch_now;
      registry->set_gauge("delay.cum_s", cum_delay);
      registry->set_gauge("energy.cum_j", cum_energy);
      registry->set_gauge("energy.wasted_cum_j", cum_wasted_energy);
      if (record.evaluated) {
        best_accuracy = std::max(best_accuracy, record.test_accuracy);
        registry->set_gauge("accuracy.last", record.test_accuracy);
        registry->set_gauge("accuracy.best", best_accuracy);
      }
    }
    if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
      std::vector<obs::Field> fields = {
          {"round", round},
          {"selected", cohort},
          {"survivors", record.survivors},
          {"crashed", crashed_count},
          {"upload_failures", upload_failure_count},
          {"dropped_late", dropped_late_count},
          {"retries", retry_count},
          {"quorum_failed", !quorum_met},
          {"round_delay_s", round_delay},
          {"round_energy_j", round_energy},
          {"wasted_energy_j", wasted_energy},
          {"cum_delay_s", cum_delay},
          {"cum_energy_j", cum_energy},
          {"train_loss", record.train_loss}};
      if (record.evaluated) {
        fields.emplace_back("test_loss", record.test_loss);
        fields.emplace_back("test_accuracy", record.test_accuracy);
      }
      tracer->emit(obs::TraceLevel::kRound, "round_end", fields);
    }
    history.add(std::move(record));
    maybe_write_checkpoint(round);

    if (over_deadline) {
      util::log_info("AsyncTrainer[sync]: deadline reached after round " +
                     std::to_string(round));
      break;
    }
    if (target_reached) break;

    if (options_.convergence_window >= 2 &&
        history.size() >= options_.convergence_window) {
      double lo = history.rounds()[history.size() - 1].train_loss;
      double hi = lo;
      for (std::size_t k = 2; k <= options_.convergence_window; ++k) {
        const double loss = history.rounds()[history.size() - k].train_loss;
        lo = std::min(lo, loss);
        hi = std::max(hi, loss);
      }
      if (hi - lo < options_.convergence_epsilon) {
        util::log_info("AsyncTrainer[sync]: converged after round " +
                       std::to_string(round));
        break;
      }
    }
  }

  if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
    tracer->emit(obs::TraceLevel::kRound, "run_end",
                 {{"rounds", history.size()},
                  {"cum_delay_s", cum_delay},
                  {"cum_energy_j", cum_energy},
                  {"wasted_energy_cum_j", cum_wasted_energy}});
    tracer->flush();
  }

  nn::load_parameters(model_, global_weights);
  return history;
}

// The event-driven FedBuff engine (docs/ASYNC.md).  A single deterministic
// clock advances through the EventQueue; devices are (re-)dispatched the
// moment they are free, the single TDMA uplink is a rolling cursor, and the
// server aggregates whenever `buffer_k` updates have arrived — each
// discounted by its staleness — without waiting for anyone still in flight.
// One server step (aggregation) plays the role the barrier round plays in
// the sync engine: it owns a RoundRecord, the observe/report_completion
// calls, the eval cadence, and the stop checks.
TrainingHistory AsyncTrainer::run_async_() {
  strategy_.reset();
  obs::Tracer* const tracer = options_.obs.tracer;
  obs::PhaseProfiler* const profiler = options_.obs.profiler;
  obs::Registry* const registry = options_.obs.registry;
  strategy_.set_instruments(options_.obs);

  const bool batteries_enabled = batteries_.size() > 0;
  util::Rng batch_rng(options_.seed);
  mec::FadingProcess fading(users_.size(), options_.fading,
                            util::Rng(options_.seed).fork(0xFAD1A6));
  mec::FaultInjector injector(users_.size(), options_.faults,
                              util::Rng(options_.seed).fork(0xFA0175));
  injector.set_tracer(tracer);
  const std::size_t max_attempts = 1 + options_.max_upload_retries;

  util::ThreadPool pool(util::ThreadPool::resolve_thread_count(options_.num_threads));
  std::vector<std::unique_ptr<nn::Sequential>> replicas;
  std::vector<nn::Sequential*> eval_models;
  replicas.reserve(pool.worker_count());
  for (std::size_t i = 0; i < pool.worker_count(); ++i) {
    replicas.push_back(std::make_unique<nn::Sequential>(model_));
    eval_models.push_back(replicas.back().get());
  }
  const bool has_state = nn::state_count(model_) > 0;

  std::vector<float> global_weights = nn::extract_parameters(model_);
  const EvalPlan eval_plan = make_eval_plan(test_, options_.eval_batch);
  TrainingHistory history;
  double cum_energy = 0.0;
  double cum_wasted_energy = 0.0;
  double best_accuracy = -1.0;
  std::uint64_t scratch_reported = tensor::scratch_realloc_count();

  // --- engine state (everything a v3 checkpoint snapshots) ---
  EventQueue queue;
  double now = 0.0;               ///< global clock; monotone through pops
  double uplink_free = 0.0;       ///< rolling TDMA cursor
  double step_start = 0.0;
  std::size_t model_version = 0;  ///< quorum-met aggregations; staleness base
  std::size_t step = 0;           ///< all aggregations; the record "round"
  std::uint64_t next_dispatch_id = 0;
  std::uint64_t resolutions = 0;  ///< checkpoint-cadence counter
  std::size_t effective_k = async_.buffer_k;  ///< 0 until the first cohort fixes it
  std::vector<std::uint8_t> busy(users_.size(), 0);
  std::map<std::uint64_t, AsyncDispatch> in_flight;  ///< keyed by dispatch id
  std::vector<AsyncArrival> buffer;
  StepAccum acc;
  bool stopping = false;

  // Anti-livelock: a hard cap on total dispatches, far above anything a
  // normal run uses (the sync engine dispatches at most max_rounds x fleet).
  const std::uint64_t dispatch_cap =
      static_cast<std::uint64_t>(options_.max_rounds + 1) * users_.size();

  // --- checkpoint resume (parse-then-commit, as in the sync engine) ---
  bool resumed = false;
  if (!options_.resume_from.empty()) {
    const Checkpoint ckpt = Checkpoint::read_file(options_.resume_from);
    if (ckpt.n_users != users_.size()) {
      throw CheckpointError("'" + options_.resume_from + "': saved for " +
                            std::to_string(ckpt.n_users) +
                            " users, this trainer has " +
                            std::to_string(users_.size()));
    }
    if (ckpt.seed != options_.seed) {
      throw CheckpointError(
          "'" + options_.resume_from + "': saved under seed " +
          std::to_string(ckpt.seed) + ", this trainer uses seed " +
          std::to_string(options_.seed) +
          " — resuming would silently diverge from the original run");
    }
    if (ckpt.strategy_name != strategy_.name()) {
      throw CheckpointError("'" + options_.resume_from +
                            "': saved with strategy '" + ckpt.strategy_name +
                            "', this trainer uses '" + strategy_.name() + "'");
    }
    if (ckpt.global_weights.size() != global_weights.size()) {
      throw CheckpointError(
          "'" + options_.resume_from + "': saved model has " +
          std::to_string(ckpt.global_weights.size()) +
          " parameters, this trainer's model has " +
          std::to_string(global_weights.size()));
    }
    if (ckpt.model_state.size() != nn::state_count(model_)) {
      throw CheckpointError(
          "'" + options_.resume_from + "': saved model has " +
          std::to_string(ckpt.model_state.size()) +
          " persistent state scalars, this trainer's model has " +
          std::to_string(nn::state_count(model_)));
    }
    if (ckpt.batteries_enabled != batteries_enabled) {
      throw CheckpointError(
          "'" + options_.resume_from + "': saved with batteries " +
          std::string(ckpt.batteries_enabled ? "enabled" : "disabled") +
          ", this trainer has them " +
          std::string(batteries_enabled ? "enabled" : "disabled"));
    }
    if (!ckpt.async_enabled) {
      throw CheckpointError(
          "'" + options_.resume_from +
          "': saved by the sync engine; resume it with FederatedTrainer or "
          "an AsyncTrainer in --mode=sync (docs/ASYNC.md)");
    }

    // Parse every engine structure into locals before mutating anything.
    EventQueue restored_queue;
    std::map<std::uint64_t, AsyncDispatch> restored_flight;
    std::vector<AsyncArrival> restored_buffer;
    std::vector<std::uint8_t> restored_busy;
    StepAccum restored_acc;
    std::size_t r_model_version = 0, r_step = 0, r_effective_k = 0;
    std::uint64_t r_next_id = 0, r_resolutions = 0;
    double r_now = 0.0, r_uplink = 0.0, r_step_start = 0.0;
    mec::BatteryFleet restored_batteries;
    try {
      util::ByteReader in(ckpt.async_state);
      r_model_version = static_cast<std::size_t>(in.u64());
      r_step = static_cast<std::size_t>(in.u64());
      r_next_id = in.u64();
      r_resolutions = in.u64();
      r_effective_k = static_cast<std::size_t>(in.u64());
      r_now = in.f64();
      r_uplink = in.f64();
      r_step_start = in.f64();
      if (!std::isfinite(r_now) || !std::isfinite(r_uplink) ||
          !std::isfinite(r_step_start) || r_now < 0.0) {
        throw CheckpointError("async state holds a non-finite clock");
      }
      restored_busy = in.vec_u8();
      if (restored_busy.size() != users_.size()) {
        throw CheckpointError(
            "async state holds a busy mask for " +
            std::to_string(restored_busy.size()) + " users, expected " +
            std::to_string(users_.size()));
      }
      restored_queue.load_state(in);
      const std::uint64_t n_flight = in.u64();
      if (n_flight > in.remaining() / kMinDispatchBytes) {
        throw CheckpointError(
            "async state declares " + std::to_string(n_flight) +
            " in-flight clients but only " + std::to_string(in.remaining()) +
            " byte(s) remain — corrupted or malformed");
      }
      for (std::uint64_t i = 0; i < n_flight; ++i) {
        AsyncDispatch d = load_dispatch(in, users_.size());
        if (d.id >= r_next_id) {
          throw CheckpointError("async state holds an in-flight dispatch id " +
                                std::to_string(d.id) +
                                " beyond the dispatch counter");
        }
        const std::uint64_t id = d.id;
        if (!restored_flight.emplace(id, std::move(d)).second) {
          throw CheckpointError("async state repeats in-flight dispatch id " +
                                std::to_string(id));
        }
      }
      const std::uint64_t n_buffer = in.u64();
      if (n_buffer > in.remaining() / kMinArrivalBytes) {
        throw CheckpointError(
            "async state declares " + std::to_string(n_buffer) +
            " buffered updates but only " + std::to_string(in.remaining()) +
            " byte(s) remain — corrupted or malformed");
      }
      restored_buffer.reserve(static_cast<std::size_t>(n_buffer));
      for (std::uint64_t i = 0; i < n_buffer; ++i) {
        restored_buffer.push_back(load_arrival(in, users_.size()));
      }
      restored_acc.dispatched_users = in.vec_size();
      restored_acc.dispatched_freqs = in.vec_f64();
      restored_acc.resolved_users = in.vec_size();
      restored_acc.resolved_freqs = in.vec_f64();
      restored_acc.resolved_completed = in.vec_u8();
      restored_acc.crashed = static_cast<std::size_t>(in.u64());
      restored_acc.upload_failures = static_cast<std::size_t>(in.u64());
      restored_acc.dropped_stale = static_cast<std::size_t>(in.u64());
      restored_acc.retries = static_cast<std::size_t>(in.u64());
      restored_acc.step_energy = in.f64();
      restored_acc.step_wasted = in.f64();
      in.expect_end("checkpoint async state");
      if (restored_acc.resolved_users.size() != restored_acc.resolved_freqs.size() ||
          restored_acc.resolved_users.size() !=
              restored_acc.resolved_completed.size() ||
          restored_acc.dispatched_users.size() !=
              restored_acc.dispatched_freqs.size()) {
        throw CheckpointError("async state step accumulators disagree in size");
      }
      // Every pending compute/upload/fault event must reference a live
      // in-flight dispatch; a dangling tag would fault mid-run.
      for (const Event& event : restored_queue.sorted_events()) {
        if (event.kind == EventKind::kChurn) continue;
        if (restored_flight.find(event.tag) == restored_flight.end()) {
          throw CheckpointError(
              "async state queues an event for unknown dispatch id " +
              std::to_string(event.tag));
        }
      }

      util::ByteReader injector_in(ckpt.injector_state);
      injector.load_state(injector_in);
      injector_in.expect_end("checkpoint injector state");
      util::ByteReader fading_in(ckpt.fading_state);
      fading.load_state(fading_in);
      fading_in.expect_end("checkpoint fading state");
      batch_rng.set_state(ckpt.batch_rng);
      if (batteries_enabled) {
        restored_batteries = batteries_;
        util::ByteReader battery_in(ckpt.battery_state);
        restored_batteries.load_state(battery_in);
        battery_in.expect_end("checkpoint battery state");
      }
      util::ByteReader strategy_in(ckpt.strategy_state);
      strategy_.load_state(strategy_in);
      strategy_in.expect_end("checkpoint strategy state");
    } catch (const CheckpointError& error) {
      throw CheckpointError("'" + options_.resume_from + "': " + error.what());
    } catch (const std::exception& error) {
      throw CheckpointError("'" + options_.resume_from + "': " + error.what());
    }
    // Commit — nothing below throws.
    if (batteries_enabled) batteries_ = std::move(restored_batteries);
    if (!ckpt.model_state.empty()) nn::load_state(model_, ckpt.model_state);
    global_weights = ckpt.global_weights;
    for (const RoundRecord& record : ckpt.records) history.add(record);
    cum_energy = ckpt.cum_energy_j;
    cum_wasted_energy = ckpt.cum_wasted_energy_j;
    best_accuracy = ckpt.best_accuracy;
    queue = std::move(restored_queue);
    in_flight = std::move(restored_flight);
    buffer = std::move(restored_buffer);
    busy = std::move(restored_busy);
    acc = std::move(restored_acc);
    model_version = r_model_version;
    step = r_step;
    next_dispatch_id = r_next_id;
    resolutions = r_resolutions;
    effective_k = r_effective_k;
    now = r_now;
    uplink_free = r_uplink;
    step_start = r_step_start;
    resumed = true;
  }

  if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
    tracer->emit(obs::TraceLevel::kRound, "run_start",
                 {{"schema", std::size_t{1}},
                  {"strategy", strategy_.name()},
                  {"users", users_.size()},
                  {"max_rounds", options_.max_rounds},
                  {"threads", pool.worker_count() == 0 ? std::size_t{1}
                                                       : pool.worker_count()},
                  {"seed", options_.seed},
                  {"faults_enabled", injector.active()},
                  {"mode", std::string_view("async")},
                  {"buffer_k", async_.buffer_k},
                  {"staleness_beta", async_.staleness_beta},
                  {"staleness_bound", async_.staleness_bound}});
  }
  if (resumed && tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
    tracer->emit(obs::TraceLevel::kRound, "checkpoint_resume",
                 {{"round", step},
                  {"records", history.size()},
                  {"cum_delay_s", now},
                  {"cum_energy_j", cum_energy},
                  {"resolutions", resolutions},
                  {"in_flight", in_flight.size()},
                  {"buffered", buffer.size()}});
  }

  // Cadenced snapshot writer.  The async cadence is counted in event
  // *resolutions* (not steps): with in-flight work outnumbering steps,
  // resolution boundaries are where a snapshot naturally captures a
  // non-empty event queue, in-flight clients, and a partial buffer.  The
  // {round} path token expands to the resolution count.
  const auto maybe_write_checkpoint = [&]() {
    if (options_.checkpoint_every == 0) return;
    if (resolutions == 0 || resolutions % options_.checkpoint_every != 0) return;
    obs::ScopedSpan span(profiler, "checkpoint",
                         static_cast<std::int64_t>(resolutions));
    Checkpoint ckpt;
    ckpt.seed = options_.seed;
    ckpt.n_users = users_.size();
    ckpt.next_round = step;
    ckpt.cum_delay_s = now;
    ckpt.cum_energy_j = cum_energy;
    ckpt.cum_wasted_energy_j = cum_wasted_energy;
    ckpt.best_accuracy = best_accuracy;
    ckpt.trace_seq = tracer != nullptr ? tracer->event_count() : 0;
    ckpt.global_weights = global_weights;
    if (has_state) ckpt.model_state = nn::extract_state(model_);
    ckpt.batch_rng = batch_rng.state();
    ckpt.strategy_name = strategy_.name();
    {
      util::ByteWriter writer;
      strategy_.save_state(writer);
      ckpt.strategy_state = writer.take();
    }
    {
      util::ByteWriter writer;
      injector.save_state(writer);
      ckpt.injector_state = writer.take();
    }
    {
      util::ByteWriter writer;
      fading.save_state(writer);
      ckpt.fading_state = writer.take();
    }
    ckpt.batteries_enabled = batteries_enabled;
    if (batteries_enabled) {
      util::ByteWriter writer;
      batteries_.save_state(writer);
      ckpt.battery_state = writer.take();
    }
    ckpt.async_enabled = true;
    {
      util::ByteWriter out;
      out.u64(static_cast<std::uint64_t>(model_version));
      out.u64(static_cast<std::uint64_t>(step));
      out.u64(next_dispatch_id);
      out.u64(resolutions);
      out.u64(static_cast<std::uint64_t>(effective_k));
      out.f64(now);
      out.f64(uplink_free);
      out.f64(step_start);
      out.vec_u8(busy);
      queue.save_state(out);
      out.u64(in_flight.size());
      for (const auto& [id, dispatch] : in_flight) save_dispatch(out, dispatch);
      out.u64(buffer.size());
      for (const AsyncArrival& arrival : buffer) save_arrival(out, arrival);
      out.vec_size(acc.dispatched_users);
      out.vec_f64(acc.dispatched_freqs);
      out.vec_size(acc.resolved_users);
      out.vec_f64(acc.resolved_freqs);
      out.vec_u8(acc.resolved_completed);
      out.u64(static_cast<std::uint64_t>(acc.crashed));
      out.u64(static_cast<std::uint64_t>(acc.upload_failures));
      out.u64(static_cast<std::uint64_t>(acc.dropped_stale));
      out.u64(static_cast<std::uint64_t>(acc.retries));
      out.f64(acc.step_energy);
      out.f64(acc.step_wasted);
      ckpt.async_state = out.take();
    }
    ckpt.records = history.rounds();
    std::string path = options_.checkpoint_path;
    constexpr std::string_view kToken = "{round}";
    for (std::size_t pos = path.find(kToken); pos != std::string::npos;
         pos = path.find(kToken, pos)) {
      const std::string value = std::to_string(resolutions);
      path.replace(pos, kToken.size(), value);
      pos += value.size();
    }
    ckpt.write_file(path);
    if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
      tracer->emit(obs::TraceLevel::kRound, "checkpoint_write",
                   {{"round", resolutions},
                    {"path", path},
                    {"records", history.size()}});
    }
  };

  // Dispatches every idle selectable device the strategy picks, trains the
  // new cohort (in parallel), and schedules each client's next event.
  // Called at every churn boundary and after every resolution.
  const auto try_dispatch = [&]() {
    if (next_dispatch_id >= dispatch_cap) return;
    sched::FleetView fleet{users_};
    std::vector<std::uint8_t> selectable(users_.size(), 0);
    const std::span<const std::uint8_t> churn_mask = injector.availability();
    const std::span<const std::uint8_t> battery_mask =
        batteries_enabled ? batteries_.alive_mask()
                          : std::span<const std::uint8_t>{};
    bool any_idle = false;
    for (std::size_t i = 0; i < users_.size(); ++i) {
      const bool ok = busy[i] == 0 &&
                      (churn_mask.empty() || churn_mask[i] != 0) &&
                      (battery_mask.empty() || battery_mask[i] != 0);
      selectable[i] = ok ? 1 : 0;
      any_idle = any_idle || ok;
    }
    if (!any_idle) return;
    fleet.alive = selectable;

    sched::Decision decision;
    {
      obs::ScopedSpan selection_span(profiler, "selection",
                                     static_cast<std::int64_t>(step));
      decision = strategy_.decide(fleet, step);
    }
    if (decision.selected.empty()) return;
    if (decision.selected.size() != decision.frequencies_hz.size()) {
      throw std::logic_error("AsyncTrainer: strategy returned a bad decision");
    }

    std::size_t cohort = decision.selected.size();
    if (next_dispatch_id + cohort > dispatch_cap) {
      cohort = static_cast<std::size_t>(dispatch_cap - next_dispatch_id);
    }
    // The first cohort fixes the semi-async buffer size (buffer_k == 0).
    if (effective_k == 0) effective_k = std::max<std::size_t>(cohort, 1);

    std::vector<double> fade_multipliers(cohort, 1.0);
    std::vector<util::Rng> client_rngs;
    client_rngs.reserve(cohort);
    std::vector<mec::ClientFaults> client_faults(cohort);
    std::vector<std::uint64_t> ids(cohort, 0);
    for (std::size_t k = 0; k < cohort; ++k) {
      const std::size_t user = decision.selected[k];
      const double f = decision.frequencies_hz[k];
      if (!fleet.is_alive(user)) {
        throw std::logic_error(
            "AsyncTrainer: strategy selected an unavailable device");
      }
      const mec::Device& device = devices_[user];
      if (f < device.f_min_hz - 1e-6 || f > device.f_max_hz + 1e-6) {
        throw std::logic_error("AsyncTrainer: frequency outside DVFS range");
      }
      fade_multipliers[k] = fading.multiplier(user);
      // Streams are keyed on the dispatch id — unique and deterministic in
      // dispatch order — so mini-batch draws and fault outcomes are
      // identical for any thread count.
      ids[k] = next_dispatch_id++;
      client_rngs.push_back(batch_rng.fork(ids[k]));
      if (injector.active()) {
        client_faults[k] = injector.draw(ids[k], user, max_attempts);
      }
      busy[user] = 1;
      acc.dispatched_users.push_back(user);
      acc.dispatched_freqs.push_back(f);
    }

    const std::vector<float> dispatch_state =
        has_state ? nn::extract_state(model_) : std::vector<float>{};

    std::vector<AsyncDispatch> outcomes(cohort);
    auto run_client = [&](std::size_t k) {
      const std::size_t user = decision.selected[k];
      obs::ScopedSpan client_span(profiler, "client",
                                  static_cast<std::int64_t>(step),
                                  static_cast<std::int64_t>(user),
                                  obs::TraceLevel::kDebug);
      const double f = decision.frequencies_hz[k];
      const mec::ClientFaults faults = client_faults[k];
      const mec::Device& device = devices_[user];

      AsyncDispatch d;
      d.slowdown = faults.slowdown;
      if (faults.crashed) {
        d.crashed = true;
        d.crash_fraction = faults.crash_fraction;
        d.compute_delay_s = mec::compute_delay_s(device, f) * faults.slowdown *
                            faults.crash_fraction;
        d.energy_j = mec::compute_energy_j(device, f) * faults.crash_fraction;
        outcomes[k] = std::move(d);
        return;
      }

      const std::size_t worker = util::ThreadPool::worker_index();
      nn::Sequential& model =
          worker == util::ThreadPool::npos ? model_ : *replicas[worker];
      if (has_state) nn::load_state(model, dispatch_state);

      util::Rng client_rng = client_rngs[k];
      d.trained = true;
      ClientUpdate update = local_update(model, global_weights, user_data_[user],
                                         options_.client, client_rng);

      const nn::CompressedModel compressed =
          nn::compress(update.weights, options_.compression);
      const double compression_ratio =
          static_cast<double>(compressed.wire_bits) /
          (32.0 * static_cast<double>(update.weights.size()));
      const double wire_bits = options_.model_size_bits * compression_ratio;
      d.weights = std::move(compressed.reconstructed);
      // FedBuff aggregates *updates*: the arrival carries the client's delta
      // from the model it was dispatched with, so a stale update nudges the
      // current model instead of dragging it back toward its old base.
      for (std::size_t i = 0; i < d.weights.size(); ++i) {
        d.weights[i] -= global_weights[i];
      }
      d.train_loss = update.train_loss;
      d.num_samples = update.num_samples;

      mec::Device faded = device;
      faded.channel_gain_sq *= fade_multipliers[k];

      d.compute_delay_s = mec::compute_delay_s(device, f) * faults.slowdown;
      d.upload_duration_s = mec::upload_delay_s(faded, channel_, wire_bits);
      d.attempts = faults.attempts();
      d.upload_ok = faults.upload_ok;
      d.failed_attempts = faults.failed_attempts;
      d.occupancy_s =
          d.attempts <= 1
              ? d.upload_duration_s
              : static_cast<double>(d.attempts) * d.upload_duration_s +
                    static_cast<double>(d.attempts - 1) * options_.retry_backoff_s;
      d.energy_j = mec::compute_energy_j(device, f) +
                   static_cast<double>(d.attempts) *
                       mec::upload_energy_j(faded, channel_, wire_bits);
      if (has_state) d.state = nn::extract_state(model);
      outcomes[k] = std::move(d);
    };

    {
      obs::ScopedSpan training_span(profiler, "local_training",
                                    static_cast<std::int64_t>(step));
      if (pool.worker_count() == 0) {
        for (std::size_t k = 0; k < cohort; ++k) run_client(k);
      } else {
        std::vector<std::future<void>> futures;
        futures.reserve(cohort);
        for (std::size_t k = 0; k < cohort; ++k) {
          futures.push_back(pool.submit([&run_client, k] { run_client(k); }));
        }
        std::string failures;
        std::size_t failure_count = 0;
        for (std::size_t k = 0; k < futures.size(); ++k) {
          try {
            futures[k].get();
          } catch (const std::exception& error) {
            ++failure_count;
            if (!failures.empty()) failures += "; ";
            failures += "client " + std::to_string(k) + " (user " +
                        std::to_string(decision.selected[k]) + "): " + error.what();
          } catch (...) {
            ++failure_count;
            if (!failures.empty()) failures += "; ";
            failures += "client " + std::to_string(k) + " (user " +
                        std::to_string(decision.selected[k]) +
                        "): unknown exception";
          }
        }
        if (failure_count > 0) {
          throw std::runtime_error(
              "AsyncTrainer: " + std::to_string(failure_count) +
              " client task(s) failed in step " + std::to_string(step) + ": " +
              failures);
        }
      }
    }

    // Commit in dispatch order: schedule each client's terminal event.
    for (std::size_t k = 0; k < cohort; ++k) {
      AsyncDispatch& d = outcomes[k];
      d.id = ids[k];
      d.user = decision.selected[k];
      d.version = model_version;
      d.frequency_hz = decision.frequencies_hz[k];
      d.dispatch_time_s = now;
      const EventKind kind =
          d.crashed ? EventKind::kFault : EventKind::kComputeFinish;
      queue.push(now + d.compute_delay_s, kind, d.user, d.id);
      if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kDecision)) {
        tracer->emit(obs::TraceLevel::kDecision, "async.dispatch",
                     {{"step", step},
                      {"user", d.user},
                      {"dispatch_id", d.id},
                      {"version", d.version},
                      {"time_s", now},
                      {"compute_delay_s", d.compute_delay_s}});
      }
      in_flight.emplace(d.id, std::move(d));
    }
  };

  // One server step ends here: FedBuff aggregation over the buffer (or a
  // flush of whatever is left), completion feedback, the step's
  // RoundRecord, eval cadence, and the stop checks.
  const auto aggregate = [&](bool flush) {
    obs::ScopedSpan aggregation_span(profiler, "aggregation",
                                     static_cast<std::int64_t>(step));
    const std::size_t arrivals = buffer.size();
    const bool quorum_met = arrivals >= options_.min_clients;
    double staleness_sum = 0.0;
    for (const AsyncArrival& a : buffer) {
      staleness_sum += static_cast<double>(model_version - a.version);
    }
    const double staleness_mean =
        arrivals > 0 ? staleness_sum / static_cast<double>(arrivals) : 0.0;

    if (!quorum_met && tracer != nullptr &&
        tracer->enabled(obs::TraceLevel::kRound)) {
      tracer->emit(obs::TraceLevel::kRound, "quorum",
                   {{"round", step},
                    {"survivors", arrivals},
                    {"min_clients", options_.min_clients}});
    }

    double train_loss_sum = 0.0;
    if (quorum_met) {
      // Staleness-discounted FedBuff step: each buffered arrival holds the
      // client's *delta* from its dispatch base, weighted by
      // num_samples / (1+s)^β, and the weighted mean delta is applied to the
      // current model.  With β = 0 every discount is exactly 1.0 and
      // fedavg_discounted degrades bitwise to the plain weighted mean.
      std::vector<DiscountedModel> uploads;
      uploads.reserve(arrivals);
      for (const AsyncArrival& a : buffer) {
        const double staleness = static_cast<double>(model_version - a.version);
        const double discount =
            async_.staleness_beta == 0.0
                ? 1.0
                : 1.0 / std::pow(1.0 + staleness, async_.staleness_beta);
        uploads.push_back({a.weights, a.num_samples, discount});
      }
      const std::vector<float> mean_delta = fedavg_discounted(uploads);
      for (std::size_t i = 0; i < global_weights.size(); ++i) {
        global_weights[i] += mean_delta[i];
      }
      ++model_version;

      sched::Decision agg_decision;
      std::vector<double> losses;
      agg_decision.selected.reserve(arrivals);
      agg_decision.frequencies_hz.reserve(arrivals);
      losses.reserve(arrivals);
      for (const AsyncArrival& a : buffer) {
        agg_decision.selected.push_back(a.user);
        agg_decision.frequencies_hz.push_back(a.frequency_hz);
        losses.push_back(a.train_loss);
        train_loss_sum += a.train_loss;
      }
      strategy_.observe(step, agg_decision, losses);
      if (has_state && !buffer.empty()) {
        nn::load_state(model_, buffer.back().state);
      }
    } else {
      // Quorum failed: the model holds still and every buffered update's
      // energy is wasted on top of what already failed this step.
      for (const AsyncArrival& a : buffer) {
        acc.step_wasted += a.energy_j;
        train_loss_sum += a.train_loss;
      }
    }

    // Completion feedback over everything resolved during this step, in
    // resolution order.  Tentative arrival marks (2) settle with the
    // step's quorum verdict.
    if (!acc.resolved_users.empty()) {
      sched::Decision resolved_decision;
      resolved_decision.selected = acc.resolved_users;
      resolved_decision.frequencies_hz = acc.resolved_freqs;
      std::vector<std::uint8_t> completed = acc.resolved_completed;
      for (std::uint8_t& c : completed) {
        c = (c == 2 && quorum_met) ? 1 : 0;
      }
      strategy_.report_completion(step, resolved_decision, completed);
    }
    aggregation_span.finish();

    cum_energy += acc.step_energy;
    const double round_delay = now - step_start;

    std::size_t available = users_.size();
    {
      const std::span<const std::uint8_t> churn_mask = injector.availability();
      const std::span<const std::uint8_t> battery_mask =
          batteries_enabled ? batteries_.alive_mask()
                            : std::span<const std::uint8_t>{};
      if (!churn_mask.empty() || !battery_mask.empty()) {
        available = 0;
        for (std::size_t i = 0; i < users_.size(); ++i) {
          if ((churn_mask.empty() || churn_mask[i] != 0) &&
              (battery_mask.empty() || battery_mask[i] != 0)) {
            ++available;
          }
        }
      }
    }

    RoundRecord record;
    record.round = step;
    record.selected = acc.dispatched_users;
    record.round_delay_s = round_delay;
    record.round_energy_j = acc.step_energy;
    record.cum_delay_s = now;
    record.cum_energy_j = cum_energy;
    record.train_loss =
        arrivals > 0 ? train_loss_sum / static_cast<double>(arrivals) : 0.0;
    record.alive_users =
        batteries_enabled ? batteries_.alive_count() : users_.size();
    record.available_users = available;
    if (quorum_met) {
      record.aggregated.reserve(arrivals);
      for (const AsyncArrival& a : buffer) record.aggregated.push_back(a.user);
    }
    record.survivors = record.aggregated.size();
    record.crashed = acc.crashed;
    record.upload_failures = acc.upload_failures;
    // In async mode dropped_late counts bounded-staleness drops — the async
    // analogue of arriving after the barrier's cutoff.
    record.dropped_late = acc.dropped_stale;
    record.retries = acc.retries;
    record.quorum_failed = !quorum_met;
    record.wasted_energy_j = acc.step_wasted;

    const bool last_step = step + 1 >= options_.max_rounds;
    const bool over_deadline = now > options_.deadline_s;
    if (step % options_.eval_every == 0 || last_step || over_deadline) {
      obs::ScopedSpan eval_span(profiler, "evaluation",
                                static_cast<std::int64_t>(step));
      Evaluation eval;
      if (pool.worker_count() == 0) {
        eval = evaluate(model_, global_weights, eval_plan);
      } else {
        if (has_state) {
          const std::vector<float> eval_state = nn::extract_state(model_);
          for (nn::Sequential* replica : eval_models) {
            nn::load_state(*replica, eval_state);
          }
        }
        eval = evaluate_parallel(eval_models, global_weights, eval_plan, pool);
      }
      record.evaluated = true;
      record.test_loss = eval.loss;
      record.test_accuracy = eval.accuracy;
    }
    const bool target_reached = record.evaluated &&
                                options_.target_accuracy >= 0.0 &&
                                record.test_accuracy >= options_.target_accuracy;

    cum_wasted_energy += acc.step_wasted;
    if (registry != nullptr) {
      registry->add("rounds.completed");
      registry->add("clients.selected", acc.dispatched_users.size());
      registry->add("clients.trained", arrivals);
      registry->add("clients.crashed", acc.crashed);
      registry->add("clients.dropped_late", acc.dropped_stale);
      registry->add("clients.aggregated", record.survivors);
      registry->add("uploads.failed", acc.upload_failures);
      registry->add("uploads.retries", acc.retries);
      if (!quorum_met) registry->add("rounds.quorum_failed");
      registry->add("async.aggregations");
      if (flush) registry->add("async.flushes");
      if (acc.dropped_stale > 0) {
        registry->add("async.dropped_stale", acc.dropped_stale);
      }
      const std::uint64_t scratch_now = tensor::scratch_realloc_count();
      registry->add("kernel.scratch_reallocs", scratch_now - scratch_reported);
      scratch_reported = scratch_now;
      registry->set_gauge("delay.cum_s", now);
      registry->set_gauge("energy.cum_j", cum_energy);
      registry->set_gauge("energy.wasted_cum_j", cum_wasted_energy);
      registry->set_gauge("async.staleness_mean", staleness_mean);
      registry->set_gauge("async.model_version",
                          static_cast<double>(model_version));
      registry->set_gauge("async.in_flight",
                          static_cast<double>(in_flight.size()));
      if (record.evaluated) {
        best_accuracy = std::max(best_accuracy, record.test_accuracy);
        registry->set_gauge("accuracy.last", record.test_accuracy);
        registry->set_gauge("accuracy.best", best_accuracy);
      }
    }
    if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
      std::vector<obs::Field> fields = {
          {"round", step},
          {"selected", acc.dispatched_users.size()},
          {"survivors", record.survivors},
          {"crashed", acc.crashed},
          {"upload_failures", acc.upload_failures},
          {"dropped_late", acc.dropped_stale},
          {"retries", acc.retries},
          {"quorum_failed", !quorum_met},
          {"round_delay_s", round_delay},
          {"round_energy_j", acc.step_energy},
          {"wasted_energy_j", acc.step_wasted},
          {"cum_delay_s", now},
          {"cum_energy_j", cum_energy},
          {"train_loss", record.train_loss}};
      if (record.evaluated) {
        fields.emplace_back("test_loss", record.test_loss);
        fields.emplace_back("test_accuracy", record.test_accuracy);
      }
      tracer->emit(obs::TraceLevel::kRound, "round_end", fields);
      tracer->emit(obs::TraceLevel::kRound, "async.step",
                   {{"round", step},
                    {"arrivals", arrivals},
                    {"buffer_k", effective_k},
                    {"staleness_mean", staleness_mean},
                    {"model_version", model_version},
                    {"in_flight", in_flight.size()},
                    {"flush", flush}});
    }
    history.add(std::move(record));

    if (over_deadline) {
      util::log_info("AsyncTrainer[async]: deadline reached after step " +
                     std::to_string(step));
      stopping = true;
    }
    if (target_reached) stopping = true;
    if (last_step) stopping = true;
    if (!stopping && options_.convergence_window >= 2 &&
        history.size() >= options_.convergence_window) {
      double lo = history.rounds()[history.size() - 1].train_loss;
      double hi = lo;
      for (std::size_t k = 2; k <= options_.convergence_window; ++k) {
        const double loss = history.rounds()[history.size() - k].train_loss;
        lo = std::min(lo, loss);
        hi = std::max(hi, loss);
      }
      if (hi - lo < options_.convergence_epsilon) {
        util::log_info("AsyncTrainer[async]: converged after step " +
                       std::to_string(step));
        stopping = true;
      }
    }

    buffer.clear();
    acc = StepAccum{};
    ++step;
    step_start = now;
    if (!stopping) {
      queue.push(now, EventKind::kChurn, 0, /*tag=*/step);
    }
  };

  // Pulls one resolved dispatch out of the in-flight map.
  const auto take_flight = [&](std::uint64_t id) {
    const auto it = in_flight.find(id);
    if (it == in_flight.end()) {
      throw std::logic_error(
          "AsyncTrainer: event references unknown dispatch id " +
          std::to_string(id));
    }
    AsyncDispatch d = std::move(it->second);
    in_flight.erase(it);
    return d;
  };

  // Bootstrap: the first churn boundary enters the queue at t = 0.  A
  // resumed run's queue already carries its pending events.
  if (!resumed && options_.max_rounds > 0) {
    queue.push(0.0, EventKind::kChurn, 0, /*tag=*/step);
  }
  if (options_.max_rounds == 0) stopping = true;

  while (!stopping) {
    if (queue.empty()) {
      // Nothing left in flight.  Flush a partial buffer (or settle pending
      // completion feedback) as one final server step; otherwise the run is
      // over — fleet depleted, strategy empty, or dispatch cap reached.
      if (!buffer.empty() || !acc.resolved_users.empty()) {
        aggregate(/*flush=*/true);
        continue;
      }
      break;
    }
    const Event event = queue.pop();
    now = event.time_s;  // monotone: every push is at >= now

    switch (event.kind) {
      case EventKind::kChurn: {
        // A server-step boundary: availability churn and channel fading
        // advance once per step, exactly as the sync engine advances them
        // once per round.
        injector.begin_round();
        fading.step();
        try_dispatch();
        if (in_flight.empty() && buffer.empty() && queue.empty() &&
            acc.resolved_users.empty() && injector.active() &&
            injector.away_count() > 0 && next_dispatch_id < dispatch_cap &&
            step < options_.max_rounds) {
          // Churn emptied the fleet before anything was dispatched: record
          // a skipped step (the sync engine's churn-skip path) and try the
          // next churn boundary.
          RoundRecord skipped;
          skipped.round = step;
          skipped.quorum_failed = true;
          skipped.cum_delay_s = now;
          skipped.cum_energy_j = cum_energy;
          skipped.alive_users =
              batteries_enabled ? batteries_.alive_count() : users_.size();
          skipped.available_users = 0;
          history.add(std::move(skipped));
          if (registry != nullptr) registry->add("rounds.skipped");
          if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
            tracer->emit(obs::TraceLevel::kRound, "round_end",
                         {{"round", step},
                          {"selected", std::size_t{0}},
                          {"survivors", std::size_t{0}},
                          {"quorum_failed", true},
                          {"cum_delay_s", now},
                          {"cum_energy_j", cum_energy}});
          }
          acc = StepAccum{};
          ++step;
          step_start = now;
          if (step < options_.max_rounds) {
            queue.push(now, EventKind::kChurn, 0, /*tag=*/step);
          }
        }
        break;
      }

      case EventKind::kComputeFinish: {
        // TDMA grant: the single uplink is a rolling cursor — this client
        // transmits as soon as both it and the channel are ready, holding
        // the channel for its full retry-inclusive occupancy.
        const auto it = in_flight.find(event.tag);
        if (it == in_flight.end()) {
          throw std::logic_error(
              "AsyncTrainer: compute_finish for unknown dispatch id " +
              std::to_string(event.tag));
        }
        AsyncDispatch& d = it->second;
        d.compute_end_s = event.time_s;
        d.upload_start_s = std::max(event.time_s, uplink_free);
        uplink_free = d.upload_start_s + d.occupancy_s;
        queue.push(uplink_free, EventKind::kUploadFinish, d.user, d.id);
        break;
      }

      case EventKind::kUploadFinish: {
        AsyncDispatch d = take_flight(event.tag);
        busy[d.user] = 0;
        acc.step_energy += d.energy_j;
        if (batteries_enabled) batteries_.drain(d.user, d.energy_j);
        acc.retries += d.attempts > 0 ? d.attempts - 1 : 0;
        const std::size_t staleness = model_version - d.version;

        bool accepted = false;
        if (!d.upload_ok) {
          ++acc.upload_failures;
          acc.step_wasted += d.energy_j;
        } else if (async_.staleness_bound > 0 &&
                   staleness > async_.staleness_bound) {
          ++acc.dropped_stale;
          acc.step_wasted += d.energy_j;
        } else {
          accepted = true;
        }

        if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kDecision)) {
          tracer->emit(obs::TraceLevel::kDecision, "tdma",
                       {{"round", step},
                        {"user", d.user},
                        {"attempts", d.attempts},
                        {"compute_end_s", d.compute_end_s},
                        {"upload_start_s", d.upload_start_s},
                        {"upload_end_s", event.time_s},
                        {"slack_s", d.upload_start_s - d.compute_end_s},
                        {"accepted", accepted},
                        {"dropped_late", false}});
        }
        if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
          if (d.slowdown > 1.0) {
            tracer->emit(obs::TraceLevel::kRound, "fault",
                         {{"round", step},
                          {"user", d.user},
                          {"kind", "straggler"},
                          {"slowdown", d.slowdown}});
          }
          if (d.failed_attempts > 0) {
            tracer->emit(obs::TraceLevel::kRound, "fault",
                         {{"round", step},
                          {"user", d.user},
                          {"kind", "upload_failure"},
                          {"failed_attempts", d.failed_attempts},
                          {"upload_ok", d.upload_ok}});
          }
          if (!accepted && d.upload_ok) {
            tracer->emit(obs::TraceLevel::kRound, "fault",
                         {{"round", step},
                          {"user", d.user},
                          {"kind", "dropped_stale"},
                          {"staleness", staleness},
                          {"staleness_bound", async_.staleness_bound}});
          }
        }

        acc.resolved_users.push_back(d.user);
        acc.resolved_freqs.push_back(d.frequency_hz);
        acc.resolved_completed.push_back(accepted ? 2 : 0);
        if (accepted) {
          if (tracer != nullptr &&
              tracer->enabled(obs::TraceLevel::kDecision)) {
            tracer->emit(obs::TraceLevel::kDecision, "async.arrival",
                         {{"step", step},
                          {"user", d.user},
                          {"dispatch_id", d.id},
                          {"staleness", staleness},
                          {"buffered", buffer.size() + 1},
                          {"buffer_k", effective_k}});
          }
          AsyncArrival arrival;
          arrival.user = d.user;
          arrival.dispatch_id = d.id;
          arrival.version = d.version;
          arrival.frequency_hz = d.frequency_hz;
          arrival.weights = std::move(d.weights);
          arrival.train_loss = d.train_loss;
          arrival.num_samples = d.num_samples;
          arrival.state = std::move(d.state);
          arrival.energy_j = d.energy_j;
          buffer.push_back(std::move(arrival));
        }

        ++resolutions;
        if (accepted && effective_k > 0 && buffer.size() >= effective_k) {
          // Step boundary: aggregate now; the kChurn event it schedules
          // owns the re-dispatch, so churn advances before the next cohort.
          aggregate(/*flush=*/false);
        } else {
          try_dispatch();
        }
        maybe_write_checkpoint();
        break;
      }

      case EventKind::kFault: {
        // Crash burn-out: the client dies crash_fraction of the way
        // through its local update — the cycles burned still cost energy,
        // but nothing ever reaches the uplink.
        AsyncDispatch d = take_flight(event.tag);
        busy[d.user] = 0;
        acc.step_energy += d.energy_j;
        acc.step_wasted += d.energy_j;
        if (batteries_enabled) batteries_.drain(d.user, d.energy_j);
        ++acc.crashed;
        if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
          tracer->emit(obs::TraceLevel::kRound, "fault",
                       {{"round", step},
                        {"user", d.user},
                        {"kind", "crash"},
                        {"crash_fraction", d.crash_fraction}});
        }
        acc.resolved_users.push_back(d.user);
        acc.resolved_freqs.push_back(d.frequency_hz);
        acc.resolved_completed.push_back(0);
        ++resolutions;
        try_dispatch();
        maybe_write_checkpoint();
        break;
      }
    }
  }

  if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
    tracer->emit(obs::TraceLevel::kRound, "run_end",
                 {{"rounds", history.size()},
                  {"cum_delay_s", now},
                  {"cum_energy_j", cum_energy},
                  {"wasted_energy_cum_j", cum_wasted_energy}});
    tracer->flush();
  }

  nn::load_parameters(model_, global_weights);
  return history;
}

}  // namespace helcfl::fl
