// Client-side local model update (Eq. 3 / Algorithm 1 line 7).
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace helcfl::fl {

/// Local-update hyperparameters.  The paper's Eq. (3) is one full-batch
/// gradient-descent step per round (local_steps = 1, batch_size = 0); both
/// can be raised for FedAvg-style multi-step local training.
struct ClientOptions {
  float learning_rate = 0.3F;  ///< tau in Eq. (3)
  std::size_t local_steps = 1;
  std::size_t batch_size = 0;  ///< 0 = full batch
  float momentum = 0.0F;       ///< local SGD momentum (amplifies client drift)
};

/// Outcome of one client's round.
struct ClientUpdate {
  std::vector<float> weights;  ///< updated local model M_q^{j+1}, flattened
  double train_loss = 0.0;     ///< loss before the last step
  std::size_t num_samples = 0; ///< |D_q| used for FedAvg weighting
};

/// Runs the local update: loads `global_weights` into `model`, performs the
/// configured GD steps on `local_data`, and returns the updated weights.
/// `rng` drives mini-batch sampling when batch_size > 0.
ClientUpdate local_update(nn::Sequential& model, std::span<const float> global_weights,
                          const data::Batch& local_data, const ClientOptions& options,
                          util::Rng& rng);

}  // namespace helcfl::fl
