// Per-round records and training history with the probes used by the
// paper's evaluation: best accuracy (Fig. 2), delay to desired accuracy
// (Table I), and energy to desired accuracy (Fig. 3).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace helcfl::fl {

/// Everything recorded about one training round.
struct RoundRecord {
  std::size_t round = 0;          ///< 0-based round index j
  std::vector<std::size_t> selected;  ///< Γ_j
  double round_delay_s = 0.0;     ///< T_Γj (Eq. 10, TDMA timeline)
  double round_energy_j = 0.0;    ///< E_Γj (Eq. 11)
  double cum_delay_s = 0.0;       ///< Σ T up to and including this round
  double cum_energy_j = 0.0;      ///< Σ E up to and including this round
  double train_loss = 0.0;        ///< mean pre-step loss over selected clients
  bool evaluated = false;         ///< whether test metrics were computed
  double test_loss = 0.0;
  double test_accuracy = 0.0;     ///< in [0, 1]
  std::size_t alive_users = 0;    ///< devices with charge left after this
                                  ///< round (battery extension; equals the
                                  ///< fleet size when batteries are off)

  // --- failure-aware execution (fault-injection extension, DESIGN.md §8);
  // --- all zero / false when faults are disabled ---
  std::vector<std::size_t> aggregated;  ///< users whose updates entered the
                                        ///< model (== selected, fault-free)
  std::size_t survivors = 0;      ///< aggregated.size() (0 on failed rounds)
  std::size_t crashed = 0;        ///< clients whose local update died
  std::size_t upload_failures = 0;  ///< clients whose every upload attempt failed
  std::size_t dropped_late = 0;   ///< updates discarded at the straggler cutoff
  std::size_t retries = 0;        ///< extra upload attempts across the cohort
  bool quorum_failed = false;     ///< fewer than min_clients survivors: the
                                  ///< global model was left unchanged
  double wasted_energy_j = 0.0;   ///< energy of clients whose updates never
                                  ///< entered the model (whole round when
                                  ///< the quorum failed)
  std::size_t available_users = 0;  ///< selectable devices this round (churn
                                    ///< ∧ battery; fleet size when both off)
};

/// Full training trace plus summary probes.
class TrainingHistory {
 public:
  void add(RoundRecord record);

  const std::vector<RoundRecord>& rounds() const { return rounds_; }
  bool empty() const { return rounds_.empty(); }
  std::size_t size() const { return rounds_.size(); }
  const RoundRecord& back() const { return rounds_.back(); }

  /// Highest evaluated test accuracy (0 if never evaluated).
  double best_accuracy() const;

  /// Cumulative delay at the first evaluated round reaching `target`
  /// accuracy; nullopt if the run never got there (the paper's "X").
  std::optional<double> time_to_accuracy(double target) const;

  /// Cumulative energy at the first evaluated round reaching `target`.
  std::optional<double> energy_to_accuracy(double target) const;

  /// Total selections of each user over the run (`n_users` sizes the
  /// result; selections beyond the range are ignored).
  std::vector<std::size_t> selection_counts(std::size_t n_users) const;

  /// Jain's fairness index of the selection counts, in (0, 1];
  /// 1 = perfectly even participation.
  double selection_fairness(std::size_t n_users) const;

  /// First round after which fewer than `n_users` devices remained alive
  /// (battery extension); nullopt if the fleet never lost a device.
  std::optional<std::size_t> round_of_first_depletion(std::size_t n_users) const;

  /// Per-user count of updates that actually entered the global model
  /// (failure-aware execution; equals selection_counts when fault-free).
  std::vector<std::size_t> aggregation_counts(std::size_t n_users) const;

  /// Rounds that missed their quorum and kept the previous global model.
  std::size_t failed_round_count() const;

  /// Totals over the run (fault-injection probes).
  std::size_t total_crashes() const;
  std::size_t total_upload_failures() const;
  std::size_t total_dropped_late() const;
  std::size_t total_retries() const;
  double total_wasted_energy_j() const;

  double total_delay_s() const { return rounds_.empty() ? 0.0 : rounds_.back().cum_delay_s; }
  double total_energy_j() const { return rounds_.empty() ? 0.0 : rounds_.back().cum_energy_j; }

 private:
  std::vector<RoundRecord> rounds_;
};

}  // namespace helcfl::fl
