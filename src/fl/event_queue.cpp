#include "fl/event_queue.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace helcfl::fl {

namespace {

/// Heap comparator: std::push_heap keeps the *largest* element first, so
/// "a sorts later than b" puts the earliest event on top.
bool later(const Event& a, const Event& b) { return b.before(a); }

}  // namespace

std::uint64_t EventQueue::push(double time_s, EventKind kind, std::uint64_t user,
                               std::uint64_t tag, double value) {
  if (!std::isfinite(time_s) || time_s < 0.0) {
    throw std::invalid_argument(
        "EventQueue::push: time_s = " + std::to_string(time_s) +
        " must be finite and non-negative (a NaN or infinite timestamp would "
        "break the queue's total order)");
  }
  Event event;
  event.time_s = time_s;
  event.seq = next_seq_++;
  event.kind = kind;
  event.user = user;
  event.tag = tag;
  event.value = value;
  heap_.push_back(event);
  std::push_heap(heap_.begin(), heap_.end(), later);
  return event.seq;
}

const Event& EventQueue::top() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::top: queue is empty");
  return heap_.front();
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: queue is empty");
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Event event = heap_.back();
  heap_.pop_back();
  return event;
}

std::vector<Event> EventQueue::sorted_events() const {
  std::vector<Event> events = heap_;
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.before(b); });
  return events;
}

void EventQueue::save_state(util::ByteWriter& out) const {
  out.u64(next_seq_);
  const std::vector<Event> events = sorted_events();
  out.u64(static_cast<std::uint64_t>(events.size()));
  for (const Event& event : events) {
    out.f64(event.time_s);
    out.u64(event.seq);
    out.u8(static_cast<std::uint8_t>(event.kind));
    out.u64(event.user);
    out.u64(event.tag);
    out.f64(event.value);
  }
}

void EventQueue::load_state(util::ByteReader& in) {
  // Parse and validate everything into locals first; commit at the end.
  const std::uint64_t next_seq = in.u64();
  const std::uint64_t count = in.u64();
  // One serialized event is 8+8+1+8+8+8 = 41 bytes; bound an adversarial
  // count by what the remaining bytes could possibly encode.
  constexpr std::size_t kEventBytes = 41;
  if (count > in.remaining() / kEventBytes) {
    throw util::SerialError(
        "EventQueue: frame declares " + std::to_string(count) +
        " events but only " + std::to_string(in.remaining()) +
        " byte(s) remain — corrupted or malformed");
  }
  std::vector<Event> events;
  events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Event event;
    event.time_s = in.f64();
    event.seq = in.u64();
    const std::uint8_t kind = in.u8();
    if (kind >= kEventKindCount) {
      throw util::SerialError("EventQueue: event " + std::to_string(i) +
                              " has invalid kind " + std::to_string(kind));
    }
    event.kind = static_cast<EventKind>(kind);
    event.user = in.u64();
    event.tag = in.u64();
    event.value = in.f64();
    if (!std::isfinite(event.time_s) || event.time_s < 0.0) {
      throw util::SerialError(
          "EventQueue: event " + std::to_string(i) +
          " has a non-finite or negative timestamp — corrupted frame");
    }
    if (event.seq >= next_seq) {
      throw util::SerialError(
          "EventQueue: event " + std::to_string(i) + " carries seq " +
          std::to_string(event.seq) + " >= next_seq " +
          std::to_string(next_seq) + " — corrupted frame");
    }
    // Canonical frames are strictly increasing in (time, seq); this also
    // proves every seq is unique.
    if (!events.empty() && !events.back().before(event)) {
      throw util::SerialError(
          "EventQueue: events " + std::to_string(i - 1) + " and " +
          std::to_string(i) +
          " are out of canonical (time, seq) order — corrupted frame");
    }
    events.push_back(event);
  }

  heap_ = std::move(events);
  std::make_heap(heap_.begin(), heap_.end(), later);
  next_seq_ = next_seq;
}

}  // namespace helcfl::fl
