#include "fl/trainer.h"

#include <algorithm>
#include <exception>
#include <future>
#include <stdexcept>

#include "fl/server.h"
#include "mec/cost_model.h"
#include "mec/tdma.h"
#include "nn/serialize.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace helcfl::fl {

namespace {

/// Everything one client's round produces, computed independently of every
/// other client so the cohort can train in parallel.  Slots are reduced in
/// selection order, which keeps FedAvg and the metrics trace bitwise
/// identical for any worker count.
struct ClientOutcome {
  ClientUpdate update;           ///< weights already post-compression
  double compute_delay_s = 0.0;
  double upload_duration_s = 0.0;
  double energy_j = 0.0;
  std::vector<float> state;      ///< post-training persistent buffers
};

}  // namespace

FederatedTrainer::FederatedTrainer(nn::Sequential& model, const data::Dataset& train,
                                   const data::Dataset& test,
                                   const data::Partition& partition,
                                   std::span<const mec::Device> devices,
                                   const mec::Channel& channel,
                                   sched::SelectionStrategy& strategy,
                                   TrainerOptions options)
    : model_(model),
      test_(test),
      devices_(devices),
      channel_(channel),
      strategy_(strategy),
      options_(options) {
  if (devices.size() != partition.size()) {
    throw std::invalid_argument("FederatedTrainer: device/partition size mismatch");
  }
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (devices[i].num_samples != partition[i].size()) {
      throw std::invalid_argument(
          "FederatedTrainer: device " + std::to_string(i) + " declares " +
          std::to_string(devices[i].num_samples) + " samples but partition has " +
          std::to_string(partition[i].size()));
    }
  }

  // Initialization phase (Algorithm 1 lines 1-2): the FLCC learns every
  // device's resource information and derives the delays.
  users_ = sched::build_user_info(devices, channel_, options_.model_size_bits);

  // Gather each user's local data once; rounds reuse the cached batches.
  user_data_.reserve(partition.size());
  for (const auto& indices : partition) {
    user_data_.push_back(train.gather(indices));
  }

  if (options_.battery_capacity_j > 0.0) {
    batteries_ = mec::BatteryFleet(devices.size(), options_.battery_capacity_j);
  }
}

TrainingHistory FederatedTrainer::run() {
  strategy_.reset();
  const bool batteries_enabled = batteries_.size() > 0;
  util::Rng batch_rng(options_.seed);
  mec::FadingProcess fading(users_.size(), options_.fading,
                            util::Rng(options_.seed).fork(0xFAD1A6));

  // Parallel round-execution engine (DESIGN.md §7): a fixed worker pool
  // with one model replica per worker.  num_threads <= 1 spawns no workers
  // and every client trains inline on the borrowed model — the reference
  // sequential path.  Replicas never outlive the pool that indexes them.
  util::ThreadPool pool(util::ThreadPool::resolve_thread_count(options_.num_threads));
  std::vector<std::unique_ptr<nn::Sequential>> replicas;
  std::vector<nn::Sequential*> eval_models;
  replicas.reserve(pool.worker_count());
  for (std::size_t i = 0; i < pool.worker_count(); ++i) {
    replicas.push_back(std::make_unique<nn::Sequential>(model_));
    eval_models.push_back(replicas.back().get());
  }
  // Persistent non-trainable buffers (BatchNorm running statistics): each
  // client starts from the round-start snapshot regardless of the worker it
  // lands on, and the server adopts the selection-order-last client's
  // buffers, so the protocol is thread-count invariant.
  const bool has_state = nn::state_count(model_) > 0;

  std::vector<float> global_weights = nn::extract_parameters(model_);
  TrainingHistory history;
  double cum_delay = 0.0;
  double cum_energy = 0.0;

  for (std::size_t round = 0; round < options_.max_rounds; ++round) {
    if (batteries_enabled && batteries_.alive_count() == 0) {
      util::log_info("FederatedTrainer: whole fleet depleted after round " +
                     std::to_string(round));
      break;
    }

    // Line 4: select users and determine their frequencies.  With the
    // battery extension the strategy only sees surviving devices; with
    // fading it ranks users by the (stale) delays of the init phase.
    sched::FleetView fleet{users_};
    if (batteries_enabled) fleet.alive = batteries_.alive_mask();
    const sched::Decision decision = strategy_.decide(fleet, round);
    if (decision.selected.empty()) {
      util::log_info("FederatedTrainer: strategy returned no users; stopping");
      break;
    }
    if (decision.selected.size() != decision.frequencies_hz.size()) {
      throw std::logic_error("FederatedTrainer: strategy returned a bad decision");
    }

    fading.step();

    // Per-client inputs resolved on the coordinator thread, in selection
    // order: decision sanity checks, this round's fading multipliers, and
    // the pre-forked RNG stream of each client.  fork() is keyed on
    // (round, user) alone, so a client's mini-batch draws are the same no
    // matter when or where its task runs.
    const std::size_t cohort = decision.selected.size();
    std::vector<double> fade_multipliers(cohort, 1.0);
    std::vector<util::Rng> client_rngs;
    client_rngs.reserve(cohort);
    for (std::size_t k = 0; k < cohort; ++k) {
      const std::size_t user = decision.selected[k];
      const double f = decision.frequencies_hz[k];
      if (batteries_enabled && !batteries_.is_alive(user)) {
        throw std::logic_error("FederatedTrainer: strategy selected a dead device");
      }
      const mec::Device& device = devices_[user];
      if (f < device.f_min_hz - 1e-6 || f > device.f_max_hz + 1e-6) {
        throw std::logic_error("FederatedTrainer: frequency outside DVFS range");
      }
      fade_multipliers[k] = fading.multiplier(user);
      client_rngs.push_back(batch_rng.fork(round * users_.size() + user));
    }

    const std::vector<float> round_state =
        has_state ? nn::extract_state(model_) : std::vector<float>{};

    // Lines 6-9: local updates in parallel (now literally), uploads
    // serialized by TDMA.  Each task owns outcome slot k; the upload
    // compression path runs inside the task so it parallelizes too.
    std::vector<ClientOutcome> outcomes(cohort);
    auto run_client = [&](std::size_t k) {
      const std::size_t user = decision.selected[k];
      const double f = decision.frequencies_hz[k];
      const std::size_t worker = util::ThreadPool::worker_index();
      nn::Sequential& model =
          worker == util::ThreadPool::npos ? model_ : *replicas[worker];
      if (has_state) nn::load_state(model, round_state);

      util::Rng client_rng = client_rngs[k];
      ClientOutcome outcome;
      outcome.update = local_update(model, global_weights, user_data_[user],
                                    options_.client, client_rng);

      // Upload compression decides what the server integrates and scales
      // the simulated payload: C_model is a config knob decoupled from the
      // trained model's true size (DESIGN.md), so the wire size entering
      // Eq. (7) is C_model times the compression ratio achieved on the
      // real weight vector.
      const nn::CompressedModel compressed =
          nn::compress(outcome.update.weights, options_.compression);
      const double compression_ratio =
          static_cast<double>(compressed.wire_bits) /
          (32.0 * static_cast<double>(outcome.update.weights.size()));
      const double wire_bits = options_.model_size_bits * compression_ratio;
      outcome.update.weights = std::move(compressed.reconstructed);

      // Fading perturbs this round's actual channel gain; strategies only
      // knew the init-time value.
      const mec::Device& device = devices_[user];
      mec::Device faded = device;
      faded.channel_gain_sq *= fade_multipliers[k];

      outcome.compute_delay_s = mec::compute_delay_s(device, f);
      outcome.upload_duration_s = mec::upload_delay_s(faded, channel_, wire_bits);
      outcome.energy_j = mec::compute_energy_j(device, f) +
                         mec::upload_energy_j(faded, channel_, wire_bits);
      if (has_state) outcome.state = nn::extract_state(model);
      outcomes[k] = std::move(outcome);
    };

    if (pool.worker_count() == 0) {
      for (std::size_t k = 0; k < cohort; ++k) run_client(k);
    } else {
      std::vector<std::future<void>> futures;
      futures.reserve(cohort);
      for (std::size_t k = 0; k < cohort; ++k) {
        futures.push_back(pool.submit([&run_client, k] { run_client(k); }));
      }
      // Join every task before letting any exception escape: the tasks
      // reference this frame's state.  The first failure in selection
      // order wins, mirroring where the sequential loop would have thrown.
      std::exception_ptr first_error;
      for (auto& future : futures) {
        try {
          future.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
    }

    // Ordered reduction (selection order), identical to the sequential loop.
    std::vector<double> compute_delays;
    std::vector<double> upload_durations;
    std::vector<double> user_energies;
    std::vector<double> client_losses;
    double round_energy = 0.0;
    double train_loss_sum = 0.0;
    for (const ClientOutcome& outcome : outcomes) {
      train_loss_sum += outcome.update.train_loss;
      client_losses.push_back(outcome.update.train_loss);
      compute_delays.push_back(outcome.compute_delay_s);
      upload_durations.push_back(outcome.upload_duration_s);
      user_energies.push_back(outcome.energy_j);
      round_energy += outcome.energy_j;
    }
    const mec::TdmaSchedule schedule =
        mec::schedule_uploads(compute_delays, upload_durations);

    // Line 10: FedAvg integration (Eq. 18).
    std::vector<WeightedModel> uploads;
    uploads.reserve(outcomes.size());
    for (const ClientOutcome& outcome : outcomes) {
      uploads.push_back({outcome.update.weights, outcome.update.num_samples});
    }
    global_weights = fedavg(uploads);
    strategy_.observe(round, decision, client_losses);
    if (has_state) nn::load_state(model_, outcomes.back().state);

    if (batteries_enabled) {
      for (std::size_t k = 0; k < cohort; ++k) {
        batteries_.drain(decision.selected[k], user_energies[k]);
      }
    }

    cum_delay += schedule.round_delay_s;
    cum_energy += round_energy;

    RoundRecord record;
    record.round = round;
    record.selected = decision.selected;
    record.round_delay_s = schedule.round_delay_s;
    record.round_energy_j = round_energy;
    record.cum_delay_s = cum_delay;
    record.cum_energy_j = cum_energy;
    record.train_loss = train_loss_sum / static_cast<double>(outcomes.size());
    record.alive_users =
        batteries_enabled ? batteries_.alive_count() : users_.size();

    const bool last_round = round + 1 == options_.max_rounds;
    const bool over_deadline = cum_delay > options_.deadline_s;
    if (round % options_.eval_every == 0 || last_round || over_deadline) {
      Evaluation eval;
      if (pool.worker_count() == 0) {
        eval = evaluate(model_, global_weights, test_, options_.eval_batch);
      } else {
        if (has_state) {
          const std::vector<float> eval_state = nn::extract_state(model_);
          for (nn::Sequential* replica : eval_models) {
            nn::load_state(*replica, eval_state);
          }
        }
        eval = evaluate_parallel(eval_models, global_weights, test_,
                                 options_.eval_batch, pool);
      }
      record.evaluated = true;
      record.test_loss = eval.loss;
      record.test_accuracy = eval.accuracy;
    }
    const bool target_reached = record.evaluated && options_.target_accuracy >= 0.0 &&
                                record.test_accuracy >= options_.target_accuracy;
    history.add(std::move(record));

    if (over_deadline) {
      util::log_info("FederatedTrainer: deadline reached after round " +
                     std::to_string(round));
      break;
    }
    if (target_reached) break;

    // Algorithm 1's convergence exit: the training-loss spread over the
    // last `window` rounds has flattened out.
    if (options_.convergence_window >= 2 &&
        history.size() >= options_.convergence_window) {
      double lo = history.rounds()[history.size() - 1].train_loss;
      double hi = lo;
      for (std::size_t k = 2; k <= options_.convergence_window; ++k) {
        const double loss = history.rounds()[history.size() - k].train_loss;
        lo = std::min(lo, loss);
        hi = std::max(hi, loss);
      }
      if (hi - lo < options_.convergence_epsilon) {
        util::log_info("FederatedTrainer: converged after round " +
                       std::to_string(round));
        break;
      }
    }
  }

  nn::load_parameters(model_, global_weights);
  return history;
}

}  // namespace helcfl::fl
