#include "fl/trainer.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <future>
#include <stdexcept>
#include <string>
#include <string_view>

#include "fl/checkpoint.h"
#include "fl/server.h"
#include "mec/cost_model.h"
#include "mec/tdma.h"
#include "nn/serialize.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace helcfl::fl {

namespace {

/// Everything one client's round produces, computed independently of every
/// other client so the cohort can train in parallel.  Slots are reduced in
/// selection order, which keeps FedAvg and the metrics trace bitwise
/// identical for any worker count.
struct ClientOutcome {
  ClientUpdate update;           ///< weights already post-compression
  double compute_delay_s = 0.0;
  double upload_duration_s = 0.0;  ///< one TDMA attempt (Eq. 7)
  double energy_j = 0.0;         ///< all cycles and transmissions, Eqs. (5)+(8)
  std::vector<float> state;      ///< post-training persistent buffers
  bool trained = false;          ///< local update produced (false = crashed)
  bool upload_ok = true;         ///< false = every upload attempt failed
  std::size_t attempts = 0;      ///< transmissions made (0 for crashed clients)
  bool accepted = false;         ///< update entered FedAvg (set post-TDMA)
  bool dropped_late = false;     ///< arrived after the straggler cutoff
};

}  // namespace

void TrainerOptions::validate(std::size_t n_users) const {
  if (eval_every == 0) {
    throw std::invalid_argument(
        "TrainerOptions: eval_every must be >= 1 (it is the modulus of the "
        "evaluation cadence; use a large value to evaluate rarely)");
  }
  if (eval_batch == 0) {
    throw std::invalid_argument(
        "TrainerOptions: eval_batch must be >= 1 (0 would make evaluation loop "
        "forever)");
  }
  if (std::isnan(deadline_s) || deadline_s < 0.0) {
    throw std::invalid_argument(
        "TrainerOptions: deadline_s = " + std::to_string(deadline_s) +
        " must be >= 0 (use infinity, the default, for no deadline)");
  }
  if (!(model_size_bits > 0.0) || !std::isfinite(model_size_bits)) {
    throw std::invalid_argument(
        "TrainerOptions: model_size_bits = " + std::to_string(model_size_bits) +
        " must be a positive finite payload (Eq. 7 divides by the uplink rate; "
        "a non-positive size makes delay and energy meaningless)");
  }
  if (min_clients == 0) {
    throw std::invalid_argument(
        "TrainerOptions: min_clients must be >= 1 (FedAvg over zero survivors "
        "is undefined; 1 restores the pre-quorum behaviour)");
  }
  if (n_users > 0 && min_clients > n_users) {
    throw std::invalid_argument(
        "TrainerOptions: min_clients = " + std::to_string(min_clients) +
        " exceeds the fleet size " + std::to_string(n_users) +
        "; no round could ever meet its quorum");
  }
  if (std::isnan(retry_backoff_s) || retry_backoff_s < 0.0) {
    throw std::invalid_argument("TrainerOptions: retry_backoff_s must be >= 0");
  }
  if (std::isnan(straggler_cutoff_s) || straggler_cutoff_s <= 0.0) {
    throw std::invalid_argument(
        "TrainerOptions: straggler_cutoff_s must be positive (use infinity, "
        "the default, to wait for every upload)");
  }
  if (checkpoint_every > 0 && checkpoint_path.empty()) {
    throw std::invalid_argument(
        "TrainerOptions: checkpoint_every = " + std::to_string(checkpoint_every) +
        " but checkpoint_path is empty; set checkpoint_path to the file the "
        "snapshots should be written to");
  }
  if (checkpoint_every == 0 && !checkpoint_path.empty()) {
    throw std::invalid_argument(
        "TrainerOptions: checkpoint_path = '" + checkpoint_path +
        "' but checkpoint_every is 0, so no checkpoint would ever be written; "
        "set checkpoint_every >= 1 (or clear checkpoint_path)");
  }
  faults.validate();
}

FederatedTrainer::FederatedTrainer(nn::Sequential& model, const data::Dataset& train,
                                   const data::Dataset& test,
                                   const data::Partition& partition,
                                   std::span<const mec::Device> devices,
                                   const mec::Channel& channel,
                                   sched::SelectionStrategy& strategy,
                                   TrainerOptions options)
    : model_(model),
      test_(test),
      devices_(devices),
      channel_(channel),
      strategy_(strategy),
      options_(options) {
  options_.validate(devices.size());
  if (devices.size() != partition.size()) {
    throw std::invalid_argument("FederatedTrainer: device/partition size mismatch");
  }
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (devices[i].num_samples != partition[i].size()) {
      throw std::invalid_argument(
          "FederatedTrainer: device " + std::to_string(i) + " declares " +
          std::to_string(devices[i].num_samples) + " samples but partition has " +
          std::to_string(partition[i].size()));
    }
  }

  // Initialization phase (Algorithm 1 lines 1-2): the FLCC learns every
  // device's resource information and derives the delays.
  users_ = sched::build_user_info(devices, channel_, options_.model_size_bits);

  // Gather each user's local data once; rounds reuse the cached batches.
  user_data_.reserve(partition.size());
  for (const auto& indices : partition) {
    user_data_.push_back(train.gather(indices));
  }

  if (options_.battery_capacity_j > 0.0) {
    batteries_ = mec::BatteryFleet(devices.size(), options_.battery_capacity_j);
  }
}

TrainingHistory FederatedTrainer::run() {
  strategy_.reset();
  // Observability sinks (DESIGN.md §9): every use below is read-only — a
  // null check followed by emitting values the round already computed.
  obs::Tracer* const tracer = options_.obs.tracer;
  obs::PhaseProfiler* const profiler = options_.obs.profiler;
  obs::Registry* const registry = options_.obs.registry;
  strategy_.set_instruments(options_.obs);

  const bool batteries_enabled = batteries_.size() > 0;
  util::Rng batch_rng(options_.seed);
  mec::FadingProcess fading(users_.size(), options_.fading,
                            util::Rng(options_.seed).fork(0xFAD1A6));
  // Fault streams are forked off the same seed but independent of the
  // mini-batch streams, so enabling faults never perturbs what a surviving
  // client trains on.
  mec::FaultInjector injector(users_.size(), options_.faults,
                              util::Rng(options_.seed).fork(0xFA0175));
  injector.set_tracer(tracer);
  const std::size_t max_attempts = 1 + options_.max_upload_retries;

  // Parallel round-execution engine (DESIGN.md §7): a fixed worker pool
  // with one model replica per worker.  num_threads <= 1 spawns no workers
  // and every client trains inline on the borrowed model — the reference
  // sequential path.  Replicas never outlive the pool that indexes them.
  util::ThreadPool pool(util::ThreadPool::resolve_thread_count(options_.num_threads));
  std::vector<std::unique_ptr<nn::Sequential>> replicas;
  std::vector<nn::Sequential*> eval_models;
  replicas.reserve(pool.worker_count());
  for (std::size_t i = 0; i < pool.worker_count(); ++i) {
    replicas.push_back(std::make_unique<nn::Sequential>(model_));
    eval_models.push_back(replicas.back().get());
  }
  // Persistent non-trainable buffers (BatchNorm running statistics): each
  // client starts from the round-start snapshot regardless of the worker it
  // lands on, and the server adopts the selection-order-last client's
  // buffers, so the protocol is thread-count invariant.
  const bool has_state = nn::state_count(model_) > 0;

  std::vector<float> global_weights = nn::extract_parameters(model_);
  // Batched evaluation (docs/KERNELS.md): the test set is gathered into
  // batch tensors once and reused every eval round — together with the
  // persistent eval models above, steady-state evaluation re-derives no
  // im2col columns' worth of batch data and repacks no weight panels
  // beyond the per-eval weight load.
  const EvalPlan eval_plan = make_eval_plan(test_, options_.eval_batch);
  TrainingHistory history;
  double cum_delay = 0.0;
  double cum_energy = 0.0;
  double cum_wasted_energy = 0.0;
  double best_accuracy = -1.0;
  // Kernel scratch growths are exported as a per-round delta of the
  // process-global counter (obs `kernel.scratch_reallocs`): after warm-up
  // rounds the delta must sit at zero — the steady-state no-alloc audit,
  // now visible in the metrics stream.
  std::uint64_t scratch_reported = tensor::scratch_realloc_count();

  // Checkpoint resume (DESIGN.md §11).  Parse-then-commit: every check and
  // every throwing parse happens before the first durable mutation, so a
  // rejected checkpoint leaves this trainer exactly as it was — strategy,
  // batteries, and model included — and a subsequent run() behaves as if
  // the resume was never attempted.
  std::size_t start_round = 0;
  if (!options_.resume_from.empty()) {
    const Checkpoint ckpt = Checkpoint::read_file(options_.resume_from);
    if (ckpt.n_users != users_.size()) {
      throw CheckpointError("'" + options_.resume_from + "': saved for " +
                            std::to_string(ckpt.n_users) +
                            " users, this trainer has " +
                            std::to_string(users_.size()));
    }
    if (ckpt.seed != options_.seed) {
      throw CheckpointError(
          "'" + options_.resume_from + "': saved under seed " +
          std::to_string(ckpt.seed) + ", this trainer uses seed " +
          std::to_string(options_.seed) +
          " — resuming would silently diverge from the original run");
    }
    if (ckpt.strategy_name != strategy_.name()) {
      throw CheckpointError("'" + options_.resume_from +
                            "': saved with strategy '" + ckpt.strategy_name +
                            "', this trainer uses '" + strategy_.name() + "'");
    }
    if (ckpt.global_weights.size() != global_weights.size()) {
      throw CheckpointError(
          "'" + options_.resume_from + "': saved model has " +
          std::to_string(ckpt.global_weights.size()) +
          " parameters, this trainer's model has " +
          std::to_string(global_weights.size()));
    }
    if (ckpt.model_state.size() != nn::state_count(model_)) {
      throw CheckpointError(
          "'" + options_.resume_from + "': saved model has " +
          std::to_string(ckpt.model_state.size()) +
          " persistent state scalars, this trainer's model has " +
          std::to_string(nn::state_count(model_)));
    }
    if (ckpt.batteries_enabled != batteries_enabled) {
      throw CheckpointError(
          "'" + options_.resume_from + "': saved with batteries " +
          std::string(ckpt.batteries_enabled ? "enabled" : "disabled") +
          ", this trainer has them " +
          std::string(batteries_enabled ? "enabled" : "disabled"));
    }
    if (ckpt.async_enabled) {
      throw CheckpointError(
          "'" + options_.resume_from +
          "': saved mid-flight by the async engine; resume it with an "
          "async-mode fl::AsyncTrainer (docs/ASYNC.md)");
    }
    mec::BatteryFleet restored_batteries;
    try {
      // Run-local cursors first (reconstructed on every run(), so partial
      // mutation cannot outlive a failure)...
      util::ByteReader injector_in(ckpt.injector_state);
      injector.load_state(injector_in);
      injector_in.expect_end("checkpoint injector state");
      util::ByteReader fading_in(ckpt.fading_state);
      fading.load_state(fading_in);
      fading_in.expect_end("checkpoint fading state");
      batch_rng.set_state(ckpt.batch_rng);
      // ...then the durable battery state parsed into a copy...
      if (batteries_enabled) {
        restored_batteries = batteries_;
        util::ByteReader battery_in(ckpt.battery_state);
        restored_batteries.load_state(battery_in);
        battery_in.expect_end("checkpoint battery state");
      }
      // ...and the strategy last: it parses its whole payload before
      // touching any member (scheduler.h contract), so this either fully
      // restores or fully leaves the just-reset() state.
      util::ByteReader strategy_in(ckpt.strategy_state);
      strategy_.load_state(strategy_in);
      strategy_in.expect_end("checkpoint strategy state");
    } catch (const std::exception& error) {
      throw CheckpointError("'" + options_.resume_from + "': " + error.what());
    }
    // Commit — nothing below throws.
    if (batteries_enabled) batteries_ = std::move(restored_batteries);
    if (!ckpt.model_state.empty()) nn::load_state(model_, ckpt.model_state);
    global_weights = ckpt.global_weights;
    for (const RoundRecord& record : ckpt.records) history.add(record);
    cum_delay = ckpt.cum_delay_s;
    cum_energy = ckpt.cum_energy_j;
    cum_wasted_energy = ckpt.cum_wasted_energy_j;
    best_accuracy = ckpt.best_accuracy;
    start_round = static_cast<std::size_t>(ckpt.next_round);
  }

  if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
    tracer->emit(obs::TraceLevel::kRound, "run_start",
                 {{"schema", std::size_t{1}},
                  {"strategy", strategy_.name()},
                  {"users", users_.size()},
                  {"max_rounds", options_.max_rounds},
                  {"threads", pool.worker_count() == 0 ? std::size_t{1}
                                                       : pool.worker_count()},
                  {"seed", options_.seed},
                  {"faults_enabled", injector.active()}});
  }
  if (start_round > 0 && tracer != nullptr &&
      tracer->enabled(obs::TraceLevel::kRound)) {
    tracer->emit(obs::TraceLevel::kRound, "checkpoint_resume",
                 {{"round", start_round},
                  {"records", history.size()},
                  {"cum_delay_s", cum_delay},
                  {"cum_energy_j", cum_energy}});
  }

  // Cadenced snapshot writer.  Called after history.add() on every path
  // that completes a round (including churn-skipped rounds), so the stored
  // trace_seq sits exactly at the boundary the resumed run re-emits from.
  const auto maybe_write_checkpoint = [&](std::size_t round) {
    if (options_.checkpoint_every == 0) return;
    const std::size_t completed = round + 1;
    if (completed % options_.checkpoint_every != 0) return;
    obs::ScopedSpan span(profiler, "checkpoint", static_cast<std::int64_t>(round));
    Checkpoint ckpt;
    ckpt.seed = options_.seed;
    ckpt.n_users = users_.size();
    ckpt.next_round = completed;
    ckpt.cum_delay_s = cum_delay;
    ckpt.cum_energy_j = cum_energy;
    ckpt.cum_wasted_energy_j = cum_wasted_energy;
    ckpt.best_accuracy = best_accuracy;
    ckpt.trace_seq = tracer != nullptr ? tracer->event_count() : 0;
    ckpt.global_weights = global_weights;
    if (has_state) ckpt.model_state = nn::extract_state(model_);
    ckpt.batch_rng = batch_rng.state();
    ckpt.strategy_name = strategy_.name();
    {
      util::ByteWriter writer;
      strategy_.save_state(writer);
      ckpt.strategy_state = writer.take();
    }
    {
      util::ByteWriter writer;
      injector.save_state(writer);
      ckpt.injector_state = writer.take();
    }
    {
      util::ByteWriter writer;
      fading.save_state(writer);
      ckpt.fading_state = writer.take();
    }
    ckpt.batteries_enabled = batteries_enabled;
    if (batteries_enabled) {
      util::ByteWriter writer;
      batteries_.save_state(writer);
      ckpt.battery_state = writer.take();
    }
    ckpt.records = history.rounds();
    std::string path = options_.checkpoint_path;
    constexpr std::string_view kToken = "{round}";
    for (std::size_t pos = path.find(kToken); pos != std::string::npos;
         pos = path.find(kToken, pos)) {
      const std::string value = std::to_string(completed);
      path.replace(pos, kToken.size(), value);
      pos += value.size();
    }
    ckpt.write_file(path);
    if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
      tracer->emit(obs::TraceLevel::kRound, "checkpoint_write",
                   {{"round", round},
                    {"path", path},
                    {"records", history.size()}});
    }
  };

  for (std::size_t round = start_round; round < options_.max_rounds; ++round) {
    if (batteries_enabled && batteries_.alive_count() == 0) {
      util::log_info("FederatedTrainer: whole fleet depleted after round " +
                     std::to_string(round));
      break;
    }

    // Availability churn advances once per round, before selection.
    injector.begin_round();

    // Line 4: select users and determine their frequencies.  The strategy
    // only sees devices that are both charged (battery extension) and
    // present (churn); with fading it ranks users by the (stale) delays of
    // the init phase.
    sched::FleetView fleet{users_};
    std::vector<std::uint8_t> selectable;  // combined mask storage
    const std::span<const std::uint8_t> churn_mask = injector.availability();
    if (batteries_enabled && !churn_mask.empty()) {
      const std::span<const std::uint8_t> battery_mask = batteries_.alive_mask();
      selectable.resize(users_.size());
      for (std::size_t i = 0; i < users_.size(); ++i) {
        selectable[i] = battery_mask[i] != 0 && churn_mask[i] != 0 ? 1 : 0;
      }
      fleet.alive = selectable;
    } else if (batteries_enabled) {
      fleet.alive = batteries_.alive_mask();
    } else if (!churn_mask.empty()) {
      fleet.alive = churn_mask;
    }
    const std::size_t available = fleet.alive_count();

    if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
      tracer->emit(obs::TraceLevel::kRound, "round_start",
                   {{"round", round},
                    {"available", available},
                    {"alive", batteries_enabled ? batteries_.alive_count()
                                                : users_.size()}});
    }

    sched::Decision decision;
    {
      obs::ScopedSpan selection_span(profiler, "selection",
                                     static_cast<std::int64_t>(round));
      if (available > 0) decision = strategy_.decide(fleet, round);
    }
    if (decision.selected.empty()) {
      if (injector.active() && injector.away_count() > 0) {
        // Churn emptied the selectable fleet this round; that is transient
        // (rejoin_rate > 0), so record a failed round and keep going.
        RoundRecord skipped;
        skipped.round = round;
        skipped.quorum_failed = true;
        skipped.cum_delay_s = cum_delay;
        skipped.cum_energy_j = cum_energy;
        skipped.alive_users =
            batteries_enabled ? batteries_.alive_count() : users_.size();
        skipped.available_users = available;
        history.add(std::move(skipped));
        if (registry != nullptr) registry->add("rounds.skipped");
        if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
          tracer->emit(obs::TraceLevel::kRound, "round_end",
                       {{"round", round},
                        {"selected", std::size_t{0}},
                        {"survivors", std::size_t{0}},
                        {"quorum_failed", true},
                        {"cum_delay_s", cum_delay},
                        {"cum_energy_j", cum_energy}});
        }
        maybe_write_checkpoint(round);
        continue;
      }
      util::log_info("FederatedTrainer: strategy returned no users; stopping");
      break;
    }
    if (decision.selected.size() != decision.frequencies_hz.size()) {
      throw std::logic_error("FederatedTrainer: strategy returned a bad decision");
    }

    fading.step();

    // Per-client inputs resolved on the coordinator thread, in selection
    // order: decision sanity checks, this round's fading multipliers, the
    // pre-forked RNG stream of each client, and the client's injected
    // faults.  fork() is keyed on (round, user) alone, so a client's
    // mini-batch draws and fault outcomes are the same no matter when or
    // where its task runs.
    const std::size_t cohort = decision.selected.size();
    std::vector<double> fade_multipliers(cohort, 1.0);
    std::vector<util::Rng> client_rngs;
    client_rngs.reserve(cohort);
    std::vector<mec::ClientFaults> client_faults(cohort);
    for (std::size_t k = 0; k < cohort; ++k) {
      const std::size_t user = decision.selected[k];
      const double f = decision.frequencies_hz[k];
      if (!fleet.is_alive(user)) {
        throw std::logic_error(
            "FederatedTrainer: strategy selected an unavailable device");
      }
      const mec::Device& device = devices_[user];
      if (f < device.f_min_hz - 1e-6 || f > device.f_max_hz + 1e-6) {
        throw std::logic_error("FederatedTrainer: frequency outside DVFS range");
      }
      fade_multipliers[k] = fading.multiplier(user);
      client_rngs.push_back(batch_rng.fork(round * users_.size() + user));
      if (injector.active()) {
        client_faults[k] = injector.draw(round, user, max_attempts);
      }
    }

    const std::vector<float> round_state =
        has_state ? nn::extract_state(model_) : std::vector<float>{};

    // Lines 6-9: local updates in parallel (now literally), uploads
    // serialized by TDMA.  Each task owns outcome slot k; the upload
    // compression path runs inside the task so it parallelizes too.
    std::vector<ClientOutcome> outcomes(cohort);
    auto run_client = [&](std::size_t k) {
      const std::size_t user = decision.selected[k];
      // Per-client span (kDebug): tagged with the pool-worker tid by the
      // profiler, so chrome://tracing shows the cohort's actual packing.
      obs::ScopedSpan client_span(profiler, "client",
                                  static_cast<std::int64_t>(round),
                                  static_cast<std::int64_t>(user),
                                  obs::TraceLevel::kDebug);
      const double f = decision.frequencies_hz[k];
      const mec::ClientFaults faults = client_faults[k];
      const mec::Device& device = devices_[user];

      if (faults.crashed) {
        // The local update died faults.crash_fraction of the way through:
        // the cycles burned still cost Eq.-(5) energy (pure waste), but
        // nothing ever reaches the uplink.
        ClientOutcome outcome;
        outcome.compute_delay_s =
            mec::compute_delay_s(device, f) * faults.slowdown * faults.crash_fraction;
        outcome.energy_j = mec::compute_energy_j(device, f) * faults.crash_fraction;
        outcomes[k] = std::move(outcome);
        return;
      }

      const std::size_t worker = util::ThreadPool::worker_index();
      nn::Sequential& model =
          worker == util::ThreadPool::npos ? model_ : *replicas[worker];
      if (has_state) nn::load_state(model, round_state);

      util::Rng client_rng = client_rngs[k];
      ClientOutcome outcome;
      outcome.trained = true;
      outcome.update = local_update(model, global_weights, user_data_[user],
                                    options_.client, client_rng);

      // Upload compression decides what the server integrates and scales
      // the simulated payload: C_model is a config knob decoupled from the
      // trained model's true size (DESIGN.md), so the wire size entering
      // Eq. (7) is C_model times the compression ratio achieved on the
      // real weight vector.
      const nn::CompressedModel compressed =
          nn::compress(outcome.update.weights, options_.compression);
      const double compression_ratio =
          static_cast<double>(compressed.wire_bits) /
          (32.0 * static_cast<double>(outcome.update.weights.size()));
      const double wire_bits = options_.model_size_bits * compression_ratio;
      outcome.update.weights = std::move(compressed.reconstructed);

      // Fading perturbs this round's actual channel gain; strategies only
      // knew the init-time value.
      mec::Device faded = device;
      faded.channel_gain_sq *= fade_multipliers[k];

      // A transient straggler stretches the Eq.-(4) delay (same cycles,
      // externally stalled) without changing the Eq.-(5) energy.  Every
      // upload attempt — failed or not — costs full Eq. (7)/(8).
      outcome.compute_delay_s = mec::compute_delay_s(device, f) * faults.slowdown;
      outcome.upload_duration_s = mec::upload_delay_s(faded, channel_, wire_bits);
      outcome.attempts = faults.attempts();
      outcome.upload_ok = faults.upload_ok;
      outcome.energy_j = mec::compute_energy_j(device, f) +
                         static_cast<double>(outcome.attempts) *
                             mec::upload_energy_j(faded, channel_, wire_bits);
      if (has_state) outcome.state = nn::extract_state(model);
      outcomes[k] = std::move(outcome);
    };

    obs::ScopedSpan training_span(profiler, "local_training",
                                  static_cast<std::int64_t>(round));
    if (pool.worker_count() == 0) {
      for (std::size_t k = 0; k < cohort; ++k) run_client(k);
    } else {
      std::vector<std::future<void>> futures;
      futures.reserve(cohort);
      for (std::size_t k = 0; k < cohort; ++k) {
        futures.push_back(pool.submit([&run_client, k] { run_client(k); }));
      }
      // Join every task before letting any exception escape: the tasks
      // reference this frame's state.  Failures are collected across the
      // whole cohort and rethrown as one aggregate error naming every
      // failed client, so a multi-client breakage is diagnosable from a
      // single message.
      std::string failures;
      std::size_t failure_count = 0;
      for (std::size_t k = 0; k < futures.size(); ++k) {
        try {
          futures[k].get();
        } catch (const std::exception& error) {
          ++failure_count;
          if (!failures.empty()) failures += "; ";
          failures += "client " + std::to_string(k) + " (user " +
                      std::to_string(decision.selected[k]) + "): " + error.what();
        } catch (...) {
          ++failure_count;
          if (!failures.empty()) failures += "; ";
          failures += "client " + std::to_string(k) + " (user " +
                      std::to_string(decision.selected[k]) + "): unknown exception";
        }
      }
      if (failure_count > 0) {
        throw std::runtime_error(
            "FederatedTrainer: " + std::to_string(failure_count) +
            " client task(s) failed in round " + std::to_string(round) + ": " +
            failures);
      }
    }
    training_span.finish();

    // TDMA serialization over the clients that actually transmit (crashed
    // clients never reach the uplink).  A failed attempt occupies the
    // channel exactly like a successful one; each retry adds a backoff gap
    // before re-occupying the uplink for another full Eq.-(7) duration.
    std::vector<std::size_t> transmitting;  // cohort indices, selection order
    std::vector<double> tx_compute_delays;
    std::vector<double> tx_occupancies;
    for (std::size_t k = 0; k < cohort; ++k) {
      if (!outcomes[k].trained) continue;
      transmitting.push_back(k);
      tx_compute_delays.push_back(outcomes[k].compute_delay_s);
      const double occupancy =
          outcomes[k].attempts <= 1
              ? outcomes[k].upload_duration_s
              : static_cast<double>(outcomes[k].attempts) *
                        outcomes[k].upload_duration_s +
                    static_cast<double>(outcomes[k].attempts - 1) *
                        options_.retry_backoff_s;
      tx_occupancies.push_back(occupancy);
    }
    const mec::TdmaSchedule schedule =
        mec::schedule_uploads(tx_compute_delays, tx_occupancies);

    // Straggler cutoff: the server closes the round at the cutoff or when
    // the last upload lands, whichever is earlier; updates completing after
    // the cutoff are discarded.
    const double cutoff = options_.straggler_cutoff_s;
    const bool trace_tdma =
        tracer != nullptr && tracer->enabled(obs::TraceLevel::kDecision);
    for (const mec::UploadSlot& slot : schedule.slots) {
      const std::size_t k = transmitting[slot.index];
      ClientOutcome& outcome = outcomes[k];
      if (outcome.upload_ok) {
        if (slot.upload_end <= cutoff) {
          outcome.accepted = true;
        } else {
          outcome.dropped_late = true;
        }
      }
      // TDMA telemetry in grant order — the Fig.-1 timeline, one event per
      // transmitting client (crashed clients never reach the uplink).
      if (trace_tdma) {
        tracer->emit(obs::TraceLevel::kDecision, "tdma",
                     {{"round", round},
                      {"user", decision.selected[k]},
                      {"attempts", outcome.attempts},
                      {"compute_end_s", slot.compute_end},
                      {"upload_start_s", slot.upload_start},
                      {"upload_end_s", slot.upload_end},
                      {"slack_s", slot.slack_s},
                      {"accepted", outcome.accepted},
                      {"dropped_late", outcome.dropped_late}});
      }
    }
    const double round_delay = std::min(schedule.round_delay_s, cutoff);

    // Fault telemetry, selection order: what the injector (and the cutoff)
    // actually did to this cohort.  Reads only the pre-drawn fault records
    // and the TDMA outcome — emitting changes no draw.
    if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
      for (std::size_t k = 0; k < cohort; ++k) {
        const std::size_t user = decision.selected[k];
        const mec::ClientFaults& faults = client_faults[k];
        if (faults.crashed) {
          tracer->emit(obs::TraceLevel::kRound, "fault",
                       {{"round", round},
                        {"user", user},
                        {"kind", "crash"},
                        {"crash_fraction", faults.crash_fraction}});
        }
        if (faults.slowdown > 1.0) {
          tracer->emit(obs::TraceLevel::kRound, "fault",
                       {{"round", round},
                        {"user", user},
                        {"kind", "straggler"},
                        {"slowdown", faults.slowdown}});
        }
        if (faults.failed_attempts > 0) {
          tracer->emit(obs::TraceLevel::kRound, "fault",
                       {{"round", round},
                        {"user", user},
                        {"kind", "upload_failure"},
                        {"failed_attempts", faults.failed_attempts},
                        {"upload_ok", faults.upload_ok}});
        }
        if (outcomes[k].dropped_late) {
          tracer->emit(obs::TraceLevel::kRound, "fault",
                       {{"round", round},
                        {"user", user},
                        {"kind", "dropped_late"},
                        {"cutoff_s", cutoff}});
        }
      }
    }

    // Ordered reduction (selection order), identical to the sequential loop.
    obs::ScopedSpan aggregation_span(profiler, "aggregation",
                                     static_cast<std::int64_t>(round));
    std::vector<double> user_energies;
    std::vector<double> client_losses;
    std::vector<std::size_t> survivors;  // cohort indices, selection order
    double round_energy = 0.0;
    double train_loss_sum = 0.0;
    std::size_t trained_count = 0;
    std::size_t crashed_count = 0;
    std::size_t upload_failure_count = 0;
    std::size_t dropped_late_count = 0;
    std::size_t retry_count = 0;
    double wasted_energy = 0.0;
    for (std::size_t k = 0; k < cohort; ++k) {
      const ClientOutcome& outcome = outcomes[k];
      if (outcome.trained) {
        train_loss_sum += outcome.update.train_loss;
        ++trained_count;
        retry_count += outcome.attempts > 0 ? outcome.attempts - 1 : 0;
        if (!outcome.upload_ok) ++upload_failure_count;
        if (outcome.dropped_late) ++dropped_late_count;
        if (outcome.accepted) survivors.push_back(k);
      } else {
        ++crashed_count;
      }
      user_energies.push_back(outcome.energy_j);
      round_energy += outcome.energy_j;
      if (!outcome.accepted) wasted_energy += outcome.energy_j;
    }

    // Quorum rule: with fewer than min_clients surviving updates the FLCC
    // keeps the previous global model — a failed round costs its delay and
    // energy but moves no weights and feeds no strategy statistics.
    const bool quorum_met = survivors.size() >= options_.min_clients;
    if (!quorum_met && tracer != nullptr &&
        tracer->enabled(obs::TraceLevel::kRound)) {
      tracer->emit(obs::TraceLevel::kRound, "quorum",
                   {{"round", round},
                    {"survivors", survivors.size()},
                    {"min_clients", options_.min_clients}});
    }
    if (quorum_met) {
      // Line 10: FedAvg integration (Eq. 18) — denominators are the
      // survivors' sample counts only.
      std::vector<WeightedModel> uploads;
      uploads.reserve(survivors.size());
      for (const std::size_t k : survivors) {
        uploads.push_back({outcomes[k].update.weights, outcomes[k].update.num_samples});
      }
      global_weights = fedavg(uploads);
      for (const std::size_t k : survivors) {
        client_losses.push_back(outcomes[k].update.train_loss);
      }
      if (survivors.size() == cohort) {
        strategy_.observe(round, decision, client_losses);
      } else {
        sched::Decision survivor_decision;
        survivor_decision.selected.reserve(survivors.size());
        survivor_decision.frequencies_hz.reserve(survivors.size());
        for (const std::size_t k : survivors) {
          survivor_decision.selected.push_back(decision.selected[k]);
          survivor_decision.frequencies_hz.push_back(decision.frequencies_hz[k]);
        }
        strategy_.observe(round, survivor_decision, client_losses);
      }
      if (has_state) nn::load_state(model_, outcomes[survivors.back()].state);
    } else {
      wasted_energy = round_energy;  // nothing entered the model
    }

    // Completion feedback: selection-time strategy state (α_q counters,
    // FedCS's deadline set, Oort's reliability view) must only count
    // clients whose data actually entered the model.
    std::vector<std::uint8_t> completed(cohort, 0);
    if (quorum_met) {
      for (const std::size_t k : survivors) completed[k] = 1;
    }
    strategy_.report_completion(round, decision, completed);
    aggregation_span.finish();

    if (batteries_enabled) {
      for (std::size_t k = 0; k < cohort; ++k) {
        batteries_.drain(decision.selected[k], user_energies[k]);
      }
    }

    cum_delay += round_delay;
    cum_energy += round_energy;

    RoundRecord record;
    record.round = round;
    record.selected = decision.selected;
    record.round_delay_s = round_delay;
    record.round_energy_j = round_energy;
    record.cum_delay_s = cum_delay;
    record.cum_energy_j = cum_energy;
    record.train_loss =
        trained_count > 0 ? train_loss_sum / static_cast<double>(trained_count) : 0.0;
    record.alive_users =
        batteries_enabled ? batteries_.alive_count() : users_.size();
    record.available_users = available;
    if (quorum_met) {
      record.aggregated.reserve(survivors.size());
      for (const std::size_t k : survivors) {
        record.aggregated.push_back(decision.selected[k]);
      }
    }
    record.survivors = record.aggregated.size();
    record.crashed = crashed_count;
    record.upload_failures = upload_failure_count;
    record.dropped_late = dropped_late_count;
    record.retries = retry_count;
    record.quorum_failed = !quorum_met;
    record.wasted_energy_j = wasted_energy;

    const bool last_round = round + 1 == options_.max_rounds;
    const bool over_deadline = cum_delay > options_.deadline_s;
    if (round % options_.eval_every == 0 || last_round || over_deadline) {
      obs::ScopedSpan eval_span(profiler, "evaluation",
                                static_cast<std::int64_t>(round));
      Evaluation eval;
      if (pool.worker_count() == 0) {
        eval = evaluate(model_, global_weights, eval_plan);
      } else {
        if (has_state) {
          const std::vector<float> eval_state = nn::extract_state(model_);
          for (nn::Sequential* replica : eval_models) {
            nn::load_state(*replica, eval_state);
          }
        }
        eval = evaluate_parallel(eval_models, global_weights, eval_plan, pool);
      }
      record.evaluated = true;
      record.test_loss = eval.loss;
      record.test_accuracy = eval.accuracy;
    }
    const bool target_reached = record.evaluated && options_.target_accuracy >= 0.0 &&
                                record.test_accuracy >= options_.target_accuracy;

    cum_wasted_energy += wasted_energy;
    if (registry != nullptr) {
      registry->add("rounds.completed");
      registry->add("clients.selected", cohort);
      registry->add("clients.trained", trained_count);
      registry->add("clients.crashed", crashed_count);
      registry->add("clients.dropped_late", dropped_late_count);
      registry->add("clients.aggregated", record.survivors);
      registry->add("uploads.failed", upload_failure_count);
      registry->add("uploads.retries", retry_count);
      if (!quorum_met) registry->add("rounds.quorum_failed");
      const std::uint64_t scratch_now = tensor::scratch_realloc_count();
      registry->add("kernel.scratch_reallocs", scratch_now - scratch_reported);
      scratch_reported = scratch_now;
      registry->set_gauge("delay.cum_s", cum_delay);
      registry->set_gauge("energy.cum_j", cum_energy);
      registry->set_gauge("energy.wasted_cum_j", cum_wasted_energy);
      if (record.evaluated) {
        best_accuracy = std::max(best_accuracy, record.test_accuracy);
        registry->set_gauge("accuracy.last", record.test_accuracy);
        registry->set_gauge("accuracy.best", best_accuracy);
      }
    }
    if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
      std::vector<obs::Field> fields = {
          {"round", round},
          {"selected", cohort},
          {"survivors", record.survivors},
          {"crashed", crashed_count},
          {"upload_failures", upload_failure_count},
          {"dropped_late", dropped_late_count},
          {"retries", retry_count},
          {"quorum_failed", !quorum_met},
          {"round_delay_s", round_delay},
          {"round_energy_j", round_energy},
          {"wasted_energy_j", wasted_energy},
          {"cum_delay_s", cum_delay},
          {"cum_energy_j", cum_energy},
          {"train_loss", record.train_loss}};
      if (record.evaluated) {
        fields.emplace_back("test_loss", record.test_loss);
        fields.emplace_back("test_accuracy", record.test_accuracy);
      }
      tracer->emit(obs::TraceLevel::kRound, "round_end", fields);
    }
    history.add(std::move(record));
    maybe_write_checkpoint(round);

    if (over_deadline) {
      util::log_info("FederatedTrainer: deadline reached after round " +
                     std::to_string(round));
      break;
    }
    if (target_reached) break;

    // Algorithm 1's convergence exit: the training-loss spread over the
    // last `window` rounds has flattened out.
    if (options_.convergence_window >= 2 &&
        history.size() >= options_.convergence_window) {
      double lo = history.rounds()[history.size() - 1].train_loss;
      double hi = lo;
      for (std::size_t k = 2; k <= options_.convergence_window; ++k) {
        const double loss = history.rounds()[history.size() - k].train_loss;
        lo = std::min(lo, loss);
        hi = std::max(hi, loss);
      }
      if (hi - lo < options_.convergence_epsilon) {
        util::log_info("FederatedTrainer: converged after round " +
                       std::to_string(round));
        break;
      }
    }
  }

  if (tracer != nullptr && tracer->enabled(obs::TraceLevel::kRound)) {
    tracer->emit(obs::TraceLevel::kRound, "run_end",
                 {{"rounds", history.size()},
                  {"cum_delay_s", cum_delay},
                  {"cum_energy_j", cum_energy},
                  {"wasted_energy_cum_j", cum_wasted_energy}});
    tracer->flush();
  }

  nn::load_parameters(model_, global_weights);
  return history;
}

}  // namespace helcfl::fl
