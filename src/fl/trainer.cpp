#include "fl/trainer.h"

#include <algorithm>
#include <stdexcept>

#include "fl/server.h"
#include "mec/cost_model.h"
#include "mec/tdma.h"
#include "nn/serialize.h"
#include "util/log.h"
#include "util/rng.h"

namespace helcfl::fl {

FederatedTrainer::FederatedTrainer(nn::Sequential& model, const data::Dataset& train,
                                   const data::Dataset& test,
                                   const data::Partition& partition,
                                   std::span<const mec::Device> devices,
                                   const mec::Channel& channel,
                                   sched::SelectionStrategy& strategy,
                                   TrainerOptions options)
    : model_(model),
      test_(test),
      devices_(devices),
      channel_(channel),
      strategy_(strategy),
      options_(options) {
  if (devices.size() != partition.size()) {
    throw std::invalid_argument("FederatedTrainer: device/partition size mismatch");
  }
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (devices[i].num_samples != partition[i].size()) {
      throw std::invalid_argument(
          "FederatedTrainer: device " + std::to_string(i) + " declares " +
          std::to_string(devices[i].num_samples) + " samples but partition has " +
          std::to_string(partition[i].size()));
    }
  }

  // Initialization phase (Algorithm 1 lines 1-2): the FLCC learns every
  // device's resource information and derives the delays.
  users_ = sched::build_user_info(devices, channel_, options_.model_size_bits);

  // Gather each user's local data once; rounds reuse the cached batches.
  user_data_.reserve(partition.size());
  for (const auto& indices : partition) {
    user_data_.push_back(train.gather(indices));
  }

  if (options_.battery_capacity_j > 0.0) {
    batteries_ = mec::BatteryFleet(devices.size(), options_.battery_capacity_j);
  }
}

TrainingHistory FederatedTrainer::run() {
  strategy_.reset();
  const bool batteries_enabled = batteries_.size() > 0;
  util::Rng batch_rng(options_.seed);
  mec::FadingProcess fading(users_.size(), options_.fading,
                            util::Rng(options_.seed).fork(0xFAD1A6));

  std::vector<float> global_weights = nn::extract_parameters(model_);
  TrainingHistory history;
  double cum_delay = 0.0;
  double cum_energy = 0.0;

  for (std::size_t round = 0; round < options_.max_rounds; ++round) {
    if (batteries_enabled && batteries_.alive_count() == 0) {
      util::log_info("FederatedTrainer: whole fleet depleted after round " +
                     std::to_string(round));
      break;
    }

    // Line 4: select users and determine their frequencies.  With the
    // battery extension the strategy only sees surviving devices; with
    // fading it ranks users by the (stale) delays of the init phase.
    sched::FleetView fleet{users_};
    if (batteries_enabled) fleet.alive = batteries_.alive_mask();
    const sched::Decision decision = strategy_.decide(fleet, round);
    if (decision.selected.empty()) {
      util::log_info("FederatedTrainer: strategy returned no users; stopping");
      break;
    }
    if (decision.selected.size() != decision.frequencies_hz.size()) {
      throw std::logic_error("FederatedTrainer: strategy returned a bad decision");
    }

    fading.step();

    // Lines 6-9: local updates in parallel, uploads serialized by TDMA.
    std::vector<ClientUpdate> updates;
    std::vector<double> compute_delays;
    std::vector<double> upload_durations;
    std::vector<double> user_energies;
    std::vector<double> client_losses;
    double round_energy = 0.0;
    double train_loss_sum = 0.0;
    updates.reserve(decision.selected.size());
    for (std::size_t k = 0; k < decision.selected.size(); ++k) {
      const std::size_t user = decision.selected[k];
      const double f = decision.frequencies_hz[k];
      if (batteries_enabled && !batteries_.is_alive(user)) {
        throw std::logic_error("FederatedTrainer: strategy selected a dead device");
      }
      const mec::Device& device = devices_[user];
      if (f < device.f_min_hz - 1e-6 || f > device.f_max_hz + 1e-6) {
        throw std::logic_error("FederatedTrainer: frequency outside DVFS range");
      }

      util::Rng client_rng = batch_rng.fork(round * users_.size() + user);
      ClientUpdate update = local_update(model_, global_weights, user_data_[user],
                                         options_.client, client_rng);
      train_loss_sum += update.train_loss;
      client_losses.push_back(update.train_loss);

      // Upload compression decides what the server integrates and scales
      // the simulated payload: C_model is a config knob decoupled from the
      // trained model's true size (DESIGN.md), so the wire size entering
      // Eq. (7) is C_model times the compression ratio achieved on the
      // real weight vector.
      const nn::CompressedModel compressed =
          nn::compress(update.weights, options_.compression);
      const double compression_ratio =
          static_cast<double>(compressed.wire_bits) /
          (32.0 * static_cast<double>(update.weights.size()));
      const double wire_bits = options_.model_size_bits * compression_ratio;
      update.weights = std::move(compressed.reconstructed);
      updates.push_back(std::move(update));

      // Fading perturbs this round's actual channel gain; strategies only
      // knew the init-time value.
      mec::Device faded = device;
      faded.channel_gain_sq *= fading.multiplier(user);

      compute_delays.push_back(mec::compute_delay_s(device, f));
      upload_durations.push_back(mec::upload_delay_s(faded, channel_, wire_bits));
      const double user_energy =
          mec::compute_energy_j(device, f) +
          mec::upload_energy_j(faded, channel_, wire_bits);
      user_energies.push_back(user_energy);
      round_energy += user_energy;
    }
    const mec::TdmaSchedule schedule =
        mec::schedule_uploads(compute_delays, upload_durations);

    // Line 10: FedAvg integration (Eq. 18).
    std::vector<WeightedModel> uploads;
    uploads.reserve(updates.size());
    for (const auto& update : updates) {
      uploads.push_back({update.weights, update.num_samples});
    }
    global_weights = fedavg(uploads);
    strategy_.observe(round, decision, client_losses);

    if (batteries_enabled) {
      for (std::size_t k = 0; k < decision.selected.size(); ++k) {
        batteries_.drain(decision.selected[k], user_energies[k]);
      }
    }

    cum_delay += schedule.round_delay_s;
    cum_energy += round_energy;

    RoundRecord record;
    record.round = round;
    record.selected = decision.selected;
    record.round_delay_s = schedule.round_delay_s;
    record.round_energy_j = round_energy;
    record.cum_delay_s = cum_delay;
    record.cum_energy_j = cum_energy;
    record.train_loss = train_loss_sum / static_cast<double>(updates.size());
    record.alive_users =
        batteries_enabled ? batteries_.alive_count() : users_.size();

    const bool last_round = round + 1 == options_.max_rounds;
    const bool over_deadline = cum_delay > options_.deadline_s;
    if (round % options_.eval_every == 0 || last_round || over_deadline) {
      const Evaluation eval =
          evaluate(model_, global_weights, test_, options_.eval_batch);
      record.evaluated = true;
      record.test_loss = eval.loss;
      record.test_accuracy = eval.accuracy;
    }
    const bool target_reached = record.evaluated && options_.target_accuracy >= 0.0 &&
                                record.test_accuracy >= options_.target_accuracy;
    history.add(std::move(record));

    if (over_deadline) {
      util::log_info("FederatedTrainer: deadline reached after round " +
                     std::to_string(round));
      break;
    }
    if (target_reached) break;

    // Algorithm 1's convergence exit: the training-loss spread over the
    // last `window` rounds has flattened out.
    if (options_.convergence_window >= 2 &&
        history.size() >= options_.convergence_window) {
      double lo = history.rounds()[history.size() - 1].train_loss;
      double hi = lo;
      for (std::size_t k = 2; k <= options_.convergence_window; ++k) {
        const double loss = history.rounds()[history.size() - k].train_loss;
        lo = std::min(lo, loss);
        hi = std::max(hi, loss);
      }
      if (hi - lo < options_.convergence_epsilon) {
        util::log_info("FederatedTrainer: converged after round " +
                       std::to_string(round));
        break;
      }
    }
  }

  nn::load_parameters(model_, global_weights);
  return history;
}

}  // namespace helcfl::fl
