#include "fl/checkpoint.h"

#include "util/file_io.h"

namespace helcfl::fl {

namespace {

constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;

// Smallest possible wire size of one RoundRecord: 16 fixed 8-byte fields
// (u64/f64), two empty vec_size (8-byte count each), and two booleans.
// Used to cap an adversarial record count before reserving for it.
constexpr std::size_t kMinRecordBytes = 16 * 8 + 2 * 8 + 2;

void write_record(util::ByteWriter& out, const RoundRecord& r) {
  out.u64(static_cast<std::uint64_t>(r.round));
  out.vec_size(r.selected);
  out.f64(r.round_delay_s);
  out.f64(r.round_energy_j);
  out.f64(r.cum_delay_s);
  out.f64(r.cum_energy_j);
  out.f64(r.train_loss);
  out.boolean(r.evaluated);
  out.f64(r.test_loss);
  out.f64(r.test_accuracy);
  out.u64(static_cast<std::uint64_t>(r.alive_users));
  out.vec_size(r.aggregated);
  out.u64(static_cast<std::uint64_t>(r.survivors));
  out.u64(static_cast<std::uint64_t>(r.crashed));
  out.u64(static_cast<std::uint64_t>(r.upload_failures));
  out.u64(static_cast<std::uint64_t>(r.dropped_late));
  out.u64(static_cast<std::uint64_t>(r.retries));
  out.boolean(r.quorum_failed);
  out.f64(r.wasted_energy_j);
  out.u64(static_cast<std::uint64_t>(r.available_users));
}

RoundRecord read_record(util::ByteReader& in) {
  RoundRecord r;
  r.round = static_cast<std::size_t>(in.u64());
  r.selected = in.vec_size();
  r.round_delay_s = in.f64();
  r.round_energy_j = in.f64();
  r.cum_delay_s = in.f64();
  r.cum_energy_j = in.f64();
  r.train_loss = in.f64();
  r.evaluated = in.boolean();
  r.test_loss = in.f64();
  r.test_accuracy = in.f64();
  r.alive_users = static_cast<std::size_t>(in.u64());
  r.aggregated = in.vec_size();
  r.survivors = static_cast<std::size_t>(in.u64());
  r.crashed = static_cast<std::size_t>(in.u64());
  r.upload_failures = static_cast<std::size_t>(in.u64());
  r.dropped_late = static_cast<std::size_t>(in.u64());
  r.retries = static_cast<std::size_t>(in.u64());
  r.quorum_failed = in.boolean();
  r.wasted_energy_j = in.f64();
  r.available_users = static_cast<std::size_t>(in.u64());
  return r;
}

void write_rng_state(util::ByteWriter& out, const util::Rng::State& s) {
  for (const std::uint64_t word : s.words) out.u64(word);
  out.u64(s.seed);
  out.f64(s.cached_normal);
  out.boolean(s.has_cached_normal);
}

util::Rng::State read_rng_state(util::ByteReader& in) {
  util::Rng::State s;
  for (auto& word : s.words) word = in.u64();
  s.seed = in.u64();
  s.cached_normal = in.f64();
  s.has_cached_normal = in.boolean();
  return s;
}

}  // namespace

std::vector<std::uint8_t> Checkpoint::serialize() const {
  util::ByteWriter payload;
  payload.u64(seed);
  payload.u64(n_users);
  payload.u64(next_round);
  payload.f64(cum_delay_s);
  payload.f64(cum_energy_j);
  payload.f64(cum_wasted_energy_j);
  payload.f64(best_accuracy);
  payload.u64(trace_seq);
  payload.vec_f32(global_weights);
  payload.vec_f32(model_state);
  write_rng_state(payload, batch_rng);
  payload.str(strategy_name);
  payload.vec_u8(strategy_state);
  payload.vec_u8(injector_state);
  payload.vec_u8(fading_state);
  payload.boolean(batteries_enabled);
  payload.vec_u8(battery_state);
  payload.boolean(async_enabled);
  payload.vec_u8(async_state);
  payload.u64(records.size());
  for (const RoundRecord& record : records) write_record(payload, record);

  util::ByteWriter file;
  file.u32(kMagic);
  file.u32(kVersion);
  file.u64(payload.size());
  file.u64(util::fnv1a64(payload.data()));
  file.raw(payload.data());
  return file.take();
}

Checkpoint Checkpoint::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes) {
    throw CheckpointError(
        "checkpoint is truncated: " + std::to_string(bytes.size()) +
        " bytes, shorter than the " + std::to_string(kHeaderBytes) +
        "-byte header");
  }
  util::ByteReader header(bytes.subspan(0, kHeaderBytes));
  const std::uint32_t magic = header.u32();
  if (magic != kMagic) {
    throw CheckpointError(
        "not a HELCFL checkpoint: bad magic (expected \"HCKP\")");
  }
  const std::uint32_t version = header.u32();
  if (version != kVersion) {
    throw CheckpointError(
        "checkpoint version " + std::to_string(version) +
        " is not supported by this build (expected version " +
        std::to_string(kVersion) +
        "); it was probably written by a newer release");
  }
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  const std::span<const std::uint8_t> rest = bytes.subspan(kHeaderBytes);
  if (payload_size > rest.size()) {
    throw CheckpointError(
        "checkpoint is truncated: header declares a " +
        std::to_string(payload_size) + "-byte payload but only " +
        std::to_string(rest.size()) + " bytes follow");
  }
  if (payload_size < rest.size()) {
    throw CheckpointError(
        "checkpoint has " + std::to_string(rest.size() - payload_size) +
        " trailing byte(s) after the declared payload");
  }
  if (util::fnv1a64(rest) != checksum) {
    throw CheckpointError(
        "checkpoint payload checksum mismatch: the file is corrupted");
  }

  try {
    util::ByteReader payload(rest);
    Checkpoint ckpt;
    ckpt.seed = payload.u64();
    ckpt.n_users = payload.u64();
    ckpt.next_round = payload.u64();
    ckpt.cum_delay_s = payload.f64();
    ckpt.cum_energy_j = payload.f64();
    ckpt.cum_wasted_energy_j = payload.f64();
    ckpt.best_accuracy = payload.f64();
    ckpt.trace_seq = payload.u64();
    ckpt.global_weights = payload.vec_f32();
    ckpt.model_state = payload.vec_f32();
    ckpt.batch_rng = read_rng_state(payload);
    ckpt.strategy_name = payload.str();
    ckpt.strategy_state = payload.vec_u8();
    ckpt.injector_state = payload.vec_u8();
    ckpt.fading_state = payload.vec_u8();
    ckpt.batteries_enabled = payload.boolean();
    ckpt.battery_state = payload.vec_u8();
    ckpt.async_enabled = payload.boolean();
    ckpt.async_state = payload.vec_u8();
    const std::uint64_t n_records = payload.u64();
    // A checksum-valid but adversarial (or version-confused) file can still
    // declare an absurd record count; bound it by what the remaining bytes
    // could possibly encode before allocating anything.
    if (n_records > payload.remaining() / kMinRecordBytes) {
      throw CheckpointError(
          "checkpoint declares " + std::to_string(n_records) +
          " round records but only " + std::to_string(payload.remaining()) +
          " payload byte(s) remain — corrupted or malformed");
    }
    ckpt.records.reserve(static_cast<std::size_t>(n_records));
    for (std::uint64_t i = 0; i < n_records; ++i) {
      ckpt.records.push_back(read_record(payload));
    }
    payload.expect_end("checkpoint payload");
    return ckpt;
  } catch (const util::SerialError& error) {
    // The checksum passed, so this is a layout (not corruption) problem —
    // most likely a hand-built or version-confused file.
    throw CheckpointError(std::string("checkpoint payload is malformed: ") +
                          error.what());
  }
}

void Checkpoint::write_file(const std::string& path) const {
  try {
    util::write_file_atomic(path, serialize());
  } catch (const std::runtime_error& error) {
    throw CheckpointError(std::string("checkpoint: ") + error.what());
  }
}

Checkpoint Checkpoint::read_file(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = util::read_file_bytes(path);
  } catch (const std::runtime_error& error) {
    throw CheckpointError(std::string("checkpoint: ") + error.what());
  }
  try {
    return deserialize(bytes);
  } catch (const CheckpointError& error) {
    throw CheckpointError("'" + path + "': " + error.what());
  }
}

}  // namespace helcfl::fl
