#include "fl/server.h"

#include <stdexcept>

#include "nn/loss.h"
#include "nn/serialize.h"

namespace helcfl::fl {

std::vector<float> fedavg(std::span<const WeightedModel> uploads) {
  if (uploads.empty()) throw std::invalid_argument("fedavg: no uploads");
  const std::size_t dim = uploads.front().weights.size();
  double total_samples = 0.0;
  for (const auto& upload : uploads) {
    if (upload.weights.size() != dim) {
      throw std::invalid_argument("fedavg: weight dimension mismatch");
    }
    total_samples += static_cast<double>(upload.num_samples);
  }
  if (total_samples <= 0.0) {
    throw std::invalid_argument("fedavg: total sample count must be positive");
  }

  // Accumulate in double to keep aggregation exact for Eq. (19) checks.
  std::vector<double> accumulator(dim, 0.0);
  for (const auto& upload : uploads) {
    const double w = static_cast<double>(upload.num_samples) / total_samples;
    for (std::size_t i = 0; i < dim; ++i) {
      accumulator[i] += w * static_cast<double>(upload.weights[i]);
    }
  }
  std::vector<float> result(dim);
  for (std::size_t i = 0; i < dim; ++i) result[i] = static_cast<float>(accumulator[i]);
  return result;
}

Evaluation evaluate(nn::Sequential& model, std::span<const float> weights,
                    const data::Dataset& dataset, std::size_t batch_size) {
  if (dataset.size() == 0) throw std::invalid_argument("evaluate: empty dataset");
  if (batch_size == 0) batch_size = dataset.size();
  nn::load_parameters(model, weights);

  double total_loss = 0.0;
  std::size_t total_correct = 0;
  std::vector<std::size_t> indices;
  for (std::size_t begin = 0; begin < dataset.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, dataset.size());
    indices.resize(end - begin);
    for (std::size_t i = begin; i < end; ++i) indices[i - begin] = i;
    const data::Batch batch = dataset.gather(indices);
    const tensor::Tensor logits = model.forward(batch.images, /*training=*/false);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, batch.labels);
    total_loss += loss.loss * static_cast<double>(batch.size());
    total_correct += loss.correct;
  }

  Evaluation eval;
  eval.loss = total_loss / static_cast<double>(dataset.size());
  eval.accuracy =
      static_cast<double>(total_correct) / static_cast<double>(dataset.size());
  return eval;
}

}  // namespace helcfl::fl
