#include "fl/server.h"

#include <cmath>
#include <future>
#include <stdexcept>

#include "nn/loss.h"
#include "nn/serialize.h"

namespace helcfl::fl {

std::vector<float> fedavg(std::span<const WeightedModel> uploads) {
  if (uploads.empty()) throw std::invalid_argument("fedavg: no uploads");
  const std::size_t dim = uploads.front().weights.size();
  double total_samples = 0.0;
  for (const auto& upload : uploads) {
    if (upload.weights.size() != dim) {
      throw std::invalid_argument("fedavg: weight dimension mismatch");
    }
    total_samples += static_cast<double>(upload.num_samples);
  }
  if (total_samples <= 0.0) {
    throw std::invalid_argument("fedavg: total sample count must be positive");
  }

  // Accumulate in double to keep aggregation exact for Eq. (19) checks.
  std::vector<double> accumulator(dim, 0.0);
  for (const auto& upload : uploads) {
    const double w = static_cast<double>(upload.num_samples) / total_samples;
    for (std::size_t i = 0; i < dim; ++i) {
      accumulator[i] += w * static_cast<double>(upload.weights[i]);
    }
  }
  std::vector<float> result(dim);
  for (std::size_t i = 0; i < dim; ++i) result[i] = static_cast<float>(accumulator[i]);
  return result;
}

std::vector<float> fedavg_discounted(std::span<const DiscountedModel> uploads) {
  if (uploads.empty()) throw std::invalid_argument("fedavg_discounted: no uploads");
  const std::size_t dim = uploads.front().weights.size();
  double total_weight = 0.0;
  for (const auto& upload : uploads) {
    if (upload.weights.size() != dim) {
      throw std::invalid_argument("fedavg_discounted: weight dimension mismatch");
    }
    if (!std::isfinite(upload.discount) || upload.discount < 0.0) {
      throw std::invalid_argument(
          "fedavg_discounted: discount must be finite and non-negative");
    }
    total_weight += static_cast<double>(upload.num_samples) * upload.discount;
  }
  if (total_weight <= 0.0) {
    throw std::invalid_argument(
        "fedavg_discounted: total discounted weight must be positive (every "
        "buffered update was discounted or sampled to zero)");
  }

  // Same double-accumulation order as fedavg(): with all discounts == 1 the
  // per-upload weight is num_samples * 1.0 — the identical double — so the
  // two functions agree bitwise (the sync-equivalence contract).
  std::vector<double> accumulator(dim, 0.0);
  for (const auto& upload : uploads) {
    const double w =
        static_cast<double>(upload.num_samples) * upload.discount / total_weight;
    for (std::size_t i = 0; i < dim; ++i) {
      accumulator[i] += w * static_cast<double>(upload.weights[i]);
    }
  }
  std::vector<float> result(dim);
  for (std::size_t i = 0; i < dim; ++i) result[i] = static_cast<float>(accumulator[i]);
  return result;
}

EvalPlan make_eval_plan(const data::Dataset& dataset, std::size_t batch_size) {
  if (dataset.size() == 0) {
    throw std::invalid_argument("make_eval_plan: empty dataset");
  }
  if (batch_size == 0) batch_size = dataset.size();
  EvalPlan plan;
  plan.total = dataset.size();
  plan.batches.reserve((dataset.size() + batch_size - 1) / batch_size);
  std::vector<std::size_t> indices;
  for (std::size_t begin = 0; begin < dataset.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, dataset.size());
    indices.resize(end - begin);
    for (std::size_t i = begin; i < end; ++i) indices[i - begin] = i;
    plan.batches.push_back(dataset.gather(indices));
  }
  return plan;
}

Evaluation evaluate(nn::Sequential& model, std::span<const float> weights,
                    const EvalPlan& plan) {
  if (plan.total == 0) throw std::invalid_argument("evaluate: empty plan");
  nn::load_parameters(model, weights);

  double total_loss = 0.0;
  std::size_t total_correct = 0;
  for (const data::Batch& batch : plan.batches) {
    const tensor::Tensor logits = model.forward(batch.images, /*training=*/false);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, batch.labels);
    total_loss += loss.loss * static_cast<double>(batch.size());
    total_correct += loss.correct;
  }

  Evaluation eval;
  eval.loss = total_loss / static_cast<double>(plan.total);
  eval.accuracy =
      static_cast<double>(total_correct) / static_cast<double>(plan.total);
  return eval;
}

Evaluation evaluate(nn::Sequential& model, std::span<const float> weights,
                    const data::Dataset& dataset, std::size_t batch_size) {
  if (dataset.size() == 0) throw std::invalid_argument("evaluate: empty dataset");
  return evaluate(model, weights, make_eval_plan(dataset, batch_size));
}

Evaluation evaluate_parallel(std::span<nn::Sequential* const> replicas,
                             std::span<const float> weights,
                             const EvalPlan& plan, util::ThreadPool& pool) {
  if (plan.total == 0) throw std::invalid_argument("evaluate: empty plan");
  if (pool.worker_count() == 0) {
    if (replicas.size() != 1) {
      throw std::invalid_argument("evaluate_parallel: inline pool needs 1 replica");
    }
    return evaluate(*replicas.front(), weights, plan);
  }
  if (replicas.size() != pool.worker_count()) {
    throw std::invalid_argument("evaluate_parallel: need one replica per worker");
  }
  for (nn::Sequential* replica : replicas) nn::load_parameters(*replica, weights);

  const std::size_t n_batches = plan.batches.size();
  std::vector<double> batch_loss(n_batches, 0.0);
  std::vector<std::size_t> batch_correct(n_batches, 0);
  std::vector<std::future<void>> futures;
  futures.reserve(n_batches);
  for (std::size_t b = 0; b < n_batches; ++b) {
    futures.push_back(pool.submit([&, b] {
      const data::Batch& batch = plan.batches[b];
      nn::Sequential& model = *replicas[util::ThreadPool::worker_index()];
      const tensor::Tensor logits = model.forward(batch.images, /*training=*/false);
      const nn::LossResult loss = nn::softmax_cross_entropy(logits, batch.labels);
      batch_loss[b] = loss.loss * static_cast<double>(batch.size());
      batch_correct[b] = loss.correct;
    }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  // Reduce in batch order: the same summation order as the sequential path.
  double total_loss = 0.0;
  std::size_t total_correct = 0;
  for (std::size_t b = 0; b < n_batches; ++b) {
    total_loss += batch_loss[b];
    total_correct += batch_correct[b];
  }
  Evaluation eval;
  eval.loss = total_loss / static_cast<double>(plan.total);
  eval.accuracy =
      static_cast<double>(total_correct) / static_cast<double>(plan.total);
  return eval;
}

Evaluation evaluate_parallel(std::span<nn::Sequential* const> replicas,
                             std::span<const float> weights,
                             const data::Dataset& dataset, std::size_t batch_size,
                             util::ThreadPool& pool) {
  if (dataset.size() == 0) throw std::invalid_argument("evaluate: empty dataset");
  return evaluate_parallel(replicas, weights,
                           make_eval_plan(dataset, batch_size), pool);
}

}  // namespace helcfl::fl
