#include "fl/metrics.h"

#include <algorithm>

namespace helcfl::fl {

void TrainingHistory::add(RoundRecord record) { rounds_.push_back(std::move(record)); }

double TrainingHistory::best_accuracy() const {
  double best = 0.0;
  for (const auto& r : rounds_) {
    if (r.evaluated) best = std::max(best, r.test_accuracy);
  }
  return best;
}

std::optional<double> TrainingHistory::time_to_accuracy(double target) const {
  for (const auto& r : rounds_) {
    if (r.evaluated && r.test_accuracy >= target) return r.cum_delay_s;
  }
  return std::nullopt;
}

std::optional<double> TrainingHistory::energy_to_accuracy(double target) const {
  for (const auto& r : rounds_) {
    if (r.evaluated && r.test_accuracy >= target) return r.cum_energy_j;
  }
  return std::nullopt;
}

std::vector<std::size_t> TrainingHistory::selection_counts(std::size_t n_users) const {
  std::vector<std::size_t> counts(n_users, 0);
  for (const auto& r : rounds_) {
    for (const std::size_t user : r.selected) {
      if (user < n_users) ++counts[user];
    }
  }
  return counts;
}

std::optional<std::size_t> TrainingHistory::round_of_first_depletion(
    std::size_t n_users) const {
  for (const auto& r : rounds_) {
    if (r.alive_users < n_users) return r.round;
  }
  return std::nullopt;
}

std::vector<std::size_t> TrainingHistory::aggregation_counts(std::size_t n_users) const {
  std::vector<std::size_t> counts(n_users, 0);
  for (const auto& r : rounds_) {
    for (const std::size_t user : r.aggregated) {
      if (user < n_users) ++counts[user];
    }
  }
  return counts;
}

std::size_t TrainingHistory::failed_round_count() const {
  std::size_t count = 0;
  for (const auto& r : rounds_) count += r.quorum_failed ? 1 : 0;
  return count;
}

std::size_t TrainingHistory::total_crashes() const {
  std::size_t count = 0;
  for (const auto& r : rounds_) count += r.crashed;
  return count;
}

std::size_t TrainingHistory::total_upload_failures() const {
  std::size_t count = 0;
  for (const auto& r : rounds_) count += r.upload_failures;
  return count;
}

std::size_t TrainingHistory::total_dropped_late() const {
  std::size_t count = 0;
  for (const auto& r : rounds_) count += r.dropped_late;
  return count;
}

std::size_t TrainingHistory::total_retries() const {
  std::size_t count = 0;
  for (const auto& r : rounds_) count += r.retries;
  return count;
}

double TrainingHistory::total_wasted_energy_j() const {
  double total = 0.0;
  for (const auto& r : rounds_) total += r.wasted_energy_j;
  return total;
}

double TrainingHistory::selection_fairness(std::size_t n_users) const {
  const auto counts = selection_counts(n_users);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const std::size_t c : counts) {
    sum += static_cast<double>(c);
    sum_sq += static_cast<double>(c) * static_cast<double>(c);
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(n_users) * sum_sq);
}

}  // namespace helcfl::fl
