// Versioned binary training snapshots (checkpoint/resume; DESIGN.md §11).
//
// A long experiment writes a Checkpoint every `checkpoint_every` rounds; a
// later process resumes from it and continues the run *bitwise identically*
// to one that never stopped: final weights, metrics CSV, and the trace
// suffix all match (tests/resume_fixtures.h is the harness that proves it).
// That works because everything stochastic in the trainer is either derived
// from the seed per (round, user) — the mini-batch and fault client streams
// — or is a sequential cursor captured here: the churn and fading RNGs, the
// strategy's own stream and counters, and the battery charge.
//
// File layout (all little-endian):
//
//   u32 magic "HCKP"  | u32 version | u64 payload_size | u64 fnv1a64(payload)
//   payload_size bytes of payload
//
// The checksum covers the payload only, so a corrupted header field and a
// corrupted payload are reported as distinct errors.  Readers accept only
// version == kVersion; a newer file is rejected with a clear message rather
// than misparsed (bump kVersion on any payload layout change and state the
// change in docs/CHECKPOINT.md, mirroring the trace-schema policy of
// docs/OBSERVABILITY.md).
//
// What is deliberately NOT stored: client optimizer slots (local momentum
// state is round-scoped — fl/client.h rebuilds it per local update, so
// there is nothing to persist), pool/replica structure (rebuilt from
// TrainerOptions; resume is thread-count invariant), and observability
// counters (a resumed run's Registry restarts at zero; the trace instead
// records the golden run's `seq` at save time so traces can be compared
// suffix-to-suffix).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "fl/metrics.h"
#include "util/rng.h"
#include "util/serial.h"

namespace helcfl::fl {

/// Thrown on any malformed, corrupt, mismatched, or unreadable checkpoint.
/// Every message names what failed; none of these errors leaves a trainer
/// partially restored.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One complete training snapshot.  FederatedTrainer fills and consumes
/// this; tests build them directly to probe the format.
struct Checkpoint {
  static constexpr std::uint32_t kMagic = 0x504b4348;  ///< "HCKP" read LE
  /// v2: the HELCFL strategy payload gained the utility-index frame
  /// (initialized flag + delay cache) after the appearance counters.
  /// v3: the payload gained the async-engine frame (async_enabled +
  /// async_state) between the battery state and the round records — the
  /// event queue, in-flight clients, and aggregation buffer of a mid-flight
  /// fl::AsyncTrainer snapshot (DESIGN.md §16, docs/ASYNC.md).
  static constexpr std::uint32_t kVersion = 3;

  // --- identity: rejected on mismatch at resume ---
  std::uint64_t seed = 0;       ///< TrainerOptions::seed of the saved run
  std::uint64_t n_users = 0;    ///< fleet size of the saved run

  // --- progress ---
  std::uint64_t next_round = 0;  ///< first round the resumed run executes
  double cum_delay_s = 0.0;
  double cum_energy_j = 0.0;
  double cum_wasted_energy_j = 0.0;
  double best_accuracy = -1.0;
  /// Tracer sequence number at save time: the golden run's trace lines with
  /// seq >= trace_seq are the ones a resumed run re-emits (after its own
  /// run_start/checkpoint_resume preamble).
  std::uint64_t trace_seq = 0;

  // --- model ---
  std::vector<float> global_weights;  ///< via nn/serialize.h
  std::vector<float> model_state;     ///< persistent buffers (empty if none)

  // --- stream cursors and component state ---
  util::Rng::State batch_rng;              ///< mini-batch fork parent
  std::string strategy_name;               ///< for error messages
  std::vector<std::uint8_t> strategy_state;  ///< SelectionStrategy::save_state frame
  std::vector<std::uint8_t> injector_state;  ///< FaultInjector::save_state
  std::vector<std::uint8_t> fading_state;    ///< FadingProcess::save_state
  bool batteries_enabled = false;
  std::vector<std::uint8_t> battery_state;   ///< BatteryFleet::save_state

  // --- async engine (v3; DESIGN.md §16) ---
  /// True iff this snapshot was written by fl::AsyncTrainer in async mode.
  /// A sync run (FederatedTrainer, or AsyncTrainer degenerating to it)
  /// writes false with an empty async_state; resuming a snapshot into the
  /// wrong engine mode is rejected before any mutation.
  bool async_enabled = false;
  /// AsyncTrainer's mid-flight frame: event queue, global clock, uplink
  /// cursor, in-flight client outcomes, and the partial aggregation buffer.
  std::vector<std::uint8_t> async_state;

  // --- accumulated metrics: replayed so the resumed CSV is byte-identical ---
  std::vector<RoundRecord> records;

  /// Full file image: header + checksummed payload.
  std::vector<std::uint8_t> serialize() const;

  /// Parses a file image.  Throws CheckpointError on bad magic, newer
  /// version, truncation, checksum mismatch, or trailing bytes.
  static Checkpoint deserialize(std::span<const std::uint8_t> bytes);

  /// Atomic write: serializes to `path` + ".tmp" then renames over `path`,
  /// so a crash mid-write never leaves a torn checkpoint under `path`.
  void write_file(const std::string& path) const;

  /// Reads and parses `path`.  Throws CheckpointError (file unreadable or
  /// any deserialize() failure).
  static Checkpoint read_file(const std::string& path);
};

}  // namespace helcfl::fl
