// Algorithm 1: the HELCFL training loop (also drives every baseline via
// the SelectionStrategy interface).
//
// Each round:  strategy picks Γ_j and F_Γj (line 4)  ->  selected clients
// update locally at their determined frequencies (line 7)  ->  uploads are
// serialized on the TDMA uplink (line 8, Fig. 1)  ->  FedAvg integration
// (line 10)  ->  delay/energy accounting via Eqs. (10)-(11) and the
// deadline check of constraint (14).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>

#include "data/dataset.h"
#include "data/partition.h"
#include "fl/client.h"
#include "fl/metrics.h"
#include "mec/battery.h"
#include "mec/channel.h"
#include "mec/device.h"
#include "mec/fading.h"
#include "mec/faults.h"
#include "nn/compression.h"
#include "nn/sequential.h"
#include "obs/instruments.h"
#include "sched/scheduler.h"

namespace helcfl::fl {

struct TrainerOptions {
  std::size_t max_rounds = 300;  ///< J
  double deadline_s = std::numeric_limits<double>::infinity();  ///< constraint (14)
  ClientOptions client;
  std::size_t eval_every = 1;    ///< evaluate global model every k rounds
  std::size_t eval_batch = 256;
  double model_size_bits = 4e6;  ///< C_model of Eq. (7)
  std::uint64_t seed = 1;        ///< mini-batch sampling stream
  double target_accuracy = -1.0; ///< stop early once reached (< 0 = never)

  /// Worker threads for the per-round client loop, upload compression, and
  /// held-out evaluation.  1 = inline sequential execution (the reference
  /// path), 0 = auto (hardware_concurrency), N >= 2 = fixed pool of N.
  /// Client updates run on per-worker model replicas with pre-forked RNG
  /// streams and are reduced in selection order, so the training trace and
  /// final weights are bitwise identical for every value of this knob
  /// (DESIGN.md §7; models containing Dropout are the documented exception).
  std::size_t num_threads = 1;

  /// Algorithm 1's convergence exit: after each round the FLCC checks
  /// whether the global model has converged.  With window >= 2, training
  /// stops once the spread (max - min) of the last `window` rounds' mean
  /// training losses falls below `epsilon`.  window = 0 disables the check.
  std::size_t convergence_window = 0;
  double convergence_epsilon = 1e-3;

  // --- extensions (DESIGN.md §6); all off by default ---
  /// Per-device energy budget in joules; <= 0 = mains powered.  Depleted
  /// devices leave the selectable fleet; training stops when nobody is
  /// left.
  double battery_capacity_j = 0.0;
  /// Gauss-Markov channel fading.  When enabled, each round's actual
  /// upload delay/energy use the faded gain while strategies keep ranking
  /// users by the delays reported at initialization (stale information).
  mec::FadingOptions fading;
  /// Lossy upload compression: shrinks the wire size entering Eq. (7) and
  /// feeds the *reconstructed* weights into FedAvg.
  nn::CompressionOptions compression;

  // --- failure-aware execution (DESIGN.md §8); all off by default ---
  /// Injected client crashes, upload losses, transient stragglers, and
  /// availability churn.  Faults are drawn from streams forked per
  /// (round, user), so traces stay bitwise identical across thread counts.
  mec::FaultOptions faults;
  /// Quorum for FedAvg: a round whose surviving update count falls below
  /// this keeps the previous global model and is recorded as failed.
  std::size_t min_clients = 1;
  /// Upload retries allowed after a failed attempt.  Each retry re-occupies
  /// the TDMA uplink for another full Eq.-(7) duration (after
  /// `retry_backoff_s` of radio silence) and costs Eq.-(8) energy again.
  std::size_t max_upload_retries = 0;
  double retry_backoff_s = 0.0;
  /// Straggler cutoff: the server closes the round at this time; updates
  /// whose TDMA upload completes later are discarded (their energy is
  /// wasted).  infinity = wait for every upload.
  double straggler_cutoff_s = std::numeric_limits<double>::infinity();

  // --- checkpoint/resume (DESIGN.md §11); off by default ---
  /// Write a checkpoint after every N completed rounds (0 = never).
  /// Requires checkpoint_path.
  std::size_t checkpoint_every = 0;
  /// Destination file.  The literal token "{round}" expands to the number
  /// of completed rounds at write time, so one run can keep every cadence
  /// point ("ckpt_r{round}.bin" -> ckpt_r3.bin, ckpt_r6.bin, ...); without
  /// the token each write atomically replaces the previous file.
  std::string checkpoint_path;
  /// Resume a run from this checkpoint before executing any round.  The
  /// checkpoint must match this trainer's seed, fleet size, model shape,
  /// strategy, and battery configuration; any mismatch throws
  /// CheckpointError and leaves the trainer untouched.  Empty = fresh run.
  std::string resume_from;

  // --- observability (DESIGN.md §9); fully inert by default ---
  /// Borrowed trace / profile / counter sinks, all nullable.  Observation
  /// is strictly read-only: the sinks draw no RNG and reorder nothing, so
  /// the training trace and final weights are bitwise identical whether or
  /// not any sink is attached (enforced by test_trace_invariance).  The
  /// pointees must outlive run().
  obs::Instruments obs;

  /// Validates every field against `n_users` devices; throws
  /// std::invalid_argument with an actionable message on the first
  /// inconsistency (called by the trainer at construction).
  void validate(std::size_t n_users) const;
};

/// Synchronous FL trainer over a simulated MEC fleet.
///
/// The model, datasets, devices, channel and strategy are borrowed and must
/// outlive the trainer.  `devices[i].num_samples` must equal
/// `partition[i].size()` so the delay/energy models and FedAvg weighting
/// agree (Eq. 4 vs Eq. 18).
class FederatedTrainer {
 public:
  FederatedTrainer(nn::Sequential& model, const data::Dataset& train,
                   const data::Dataset& test, const data::Partition& partition,
                   std::span<const mec::Device> devices, const mec::Channel& channel,
                   sched::SelectionStrategy& strategy, TrainerOptions options);

  /// Runs up to max_rounds rounds (stopping at the deadline or the target
  /// accuracy) and returns the full trace.  The final global model remains
  /// loaded in the model passed at construction.
  TrainingHistory run();

  /// Fleet view the strategy sees (useful for tests and benches).
  sched::FleetView fleet_view() const { return {users_}; }

 private:
  nn::Sequential& model_;
  const data::Dataset& test_;
  std::span<const mec::Device> devices_;
  mec::Channel channel_;
  sched::SelectionStrategy& strategy_;
  TrainerOptions options_;
  std::vector<sched::UserInfo> users_;
  std::vector<data::Batch> user_data_;  ///< gathered once at construction
  mec::BatteryFleet batteries_;         ///< empty when batteries disabled
};

}  // namespace helcfl::fl
