#include "mec/battery.h"

#include <algorithm>
#include <stdexcept>

namespace helcfl::mec {

double Battery::drain(double joules) {
  if (joules < 0.0) throw std::invalid_argument("Battery::drain: negative energy");
  if (is_mains_powered()) return joules;
  const double drained = std::min(joules, remaining_j_);
  remaining_j_ -= drained;
  return drained;
}

double Battery::state_of_charge() const {
  if (is_mains_powered()) return 1.0;
  return remaining_j_ / capacity_j_;
}

BatteryFleet::BatteryFleet(std::size_t n_devices, double capacity_j)
    : batteries_(n_devices, Battery(capacity_j)), alive_(n_devices, 1) {}

BatteryFleet::BatteryFleet(std::vector<double> capacities_j) {
  batteries_.reserve(capacities_j.size());
  for (const double capacity : capacities_j) batteries_.emplace_back(capacity);
  alive_.assign(batteries_.size(), 1);
}

double BatteryFleet::drain(std::size_t i, double joules) {
  const double drained = batteries_.at(i).drain(joules);
  if (batteries_[i].depleted()) alive_[i] = 0;
  return drained;
}

std::size_t BatteryFleet::alive_count() const {
  std::size_t count = 0;
  for (const auto a : alive_) count += a;
  return count;
}

double BatteryFleet::mean_state_of_charge() const {
  if (batteries_.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& b : batteries_) sum += b.state_of_charge();
  return sum / static_cast<double>(batteries_.size());
}

}  // namespace helcfl::mec
