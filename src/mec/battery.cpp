#include "mec/battery.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace helcfl::mec {

double Battery::drain(double joules) {
  if (joules < 0.0) throw std::invalid_argument("Battery::drain: negative energy");
  if (is_mains_powered()) return joules;
  const double drained = std::min(joules, remaining_j_);
  remaining_j_ -= drained;
  return drained;
}

double Battery::state_of_charge() const {
  if (is_mains_powered()) return 1.0;
  return remaining_j_ / capacity_j_;
}

void Battery::restore_remaining_j(double joules) {
  if (is_mains_powered()) return;
  remaining_j_ = std::clamp(joules, 0.0, capacity_j_);
}

BatteryFleet::BatteryFleet(std::size_t n_devices, double capacity_j)
    : batteries_(n_devices, Battery(capacity_j)), alive_(n_devices, 1) {}

BatteryFleet::BatteryFleet(std::vector<double> capacities_j) {
  batteries_.reserve(capacities_j.size());
  for (const double capacity : capacities_j) batteries_.emplace_back(capacity);
  alive_.assign(batteries_.size(), 1);
}

double BatteryFleet::drain(std::size_t i, double joules) {
  const double drained = batteries_.at(i).drain(joules);
  if (batteries_[i].depleted()) alive_[i] = 0;
  return drained;
}

std::size_t BatteryFleet::alive_count() const {
  std::size_t count = 0;
  for (const auto a : alive_) count += a;
  return count;
}

void BatteryFleet::save_state(util::ByteWriter& out) const {
  out.u64(batteries_.size());
  for (const auto& battery : batteries_) {
    out.f64(battery.capacity_j());
    out.f64(battery.remaining_j());
  }
}

void BatteryFleet::load_state(util::ByteReader& in) {
  const std::uint64_t n = in.u64();
  if (n != batteries_.size()) {
    throw util::SerialError("BatteryFleet: state was saved for " + std::to_string(n) +
                            " batteries, this fleet has " +
                            std::to_string(batteries_.size()));
  }
  std::vector<double> remaining(batteries_.size());
  for (std::size_t i = 0; i < batteries_.size(); ++i) {
    const double capacity = in.f64();
    remaining[i] = in.f64();
    if (capacity != batteries_[i].capacity_j()) {
      throw util::SerialError("BatteryFleet: capacity mismatch at battery " +
                              std::to_string(i));
    }
  }
  for (std::size_t i = 0; i < batteries_.size(); ++i) {
    batteries_[i].restore_remaining_j(remaining[i]);
    alive_[i] = batteries_[i].depleted() ? 0 : 1;
  }
}

double BatteryFleet::mean_state_of_charge() const {
  if (batteries_.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& b : batteries_) sum += b.state_of_charge();
  return sum / static_cast<double>(batteries_.size());
}

}  // namespace helcfl::mec
