// Wireless uplink model (Eq. 6 of the paper).
#pragma once

#include "mec/device.h"

namespace helcfl::mec {

/// Shared TDMA uplink of the MEC system: Z resource blocks of total
/// bandwidth `bandwidth_hz` and background noise power `noise_w`.
struct Channel {
  double bandwidth_hz = 2e6;  ///< Z: total RB bandwidth (paper: 2 MHz)
  double noise_w = 1e-9;      ///< N0 background noise power

  /// Achievable upload rate of `device` in bits/s:
  /// R_q = Z * log2(1 + p_q h_q^2 / N0).
  double upload_rate_bps(const Device& device) const;

  /// Signal-to-noise ratio p h^2 / N0 (dimensionless).
  double snr(const Device& device) const;
};

}  // namespace helcfl::mec
