// Time-varying channel fading (extension; see DESIGN.md §6).
//
// The paper assumes static channel gains h_q².  Real uplinks fade between
// rounds; schedulers that rank users by a delay estimated once at
// initialization (HELCFL, FedCS) then act on *stale* information.  This
// module provides a per-device Gauss-Markov (first-order autoregressive)
// fading process in the dB domain:
//
//   x_{t+1} = rho * x_t + sqrt(1 - rho^2) * sigma * n_t,   n_t ~ N(0, 1)
//   multiplier_t = 10^{x_t / 10}
//
// so the instantaneous gain is h_q² * multiplier_t with a log-normal
// marginal of spread `sigma_db` and round-to-round correlation `rho`.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"
#include "util/serial.h"

namespace helcfl::mec {

/// Gauss-Markov fading knobs (see the header comment for the process).
struct FadingOptions {
  bool enabled = false;   ///< false = static gains, the paper's assumption
  double rho = 0.9;       ///< round-to-round correlation in [0, 1)
  double sigma_db = 4.0;  ///< marginal standard deviation in dB
};

/// Independent Gauss-Markov fading states for a fleet of devices.
class FadingProcess {
 public:
  FadingProcess() = default;
  /// Starts every device at its stationary distribution draw.
  FadingProcess(std::size_t n_devices, const FadingOptions& options, util::Rng rng);

  /// Advances all devices one round.
  void step();

  /// Linear-scale gain multiplier of device i for the current round (1.0
  /// when fading is disabled).
  double multiplier(std::size_t i) const;

  std::size_t size() const { return states_db_.size(); }
  bool enabled() const { return options_.enabled; }

  /// Serializes the RNG cursor and per-device dB states.
  void save_state(util::ByteWriter& out) const;

  /// Restores state written by save_state() on a process constructed with
  /// the same fleet size; throws util::SerialError on mismatch.
  void load_state(util::ByteReader& in);

 private:
  FadingOptions options_;
  util::Rng rng_;
  std::vector<double> states_db_;
};

}  // namespace helcfl::mec
