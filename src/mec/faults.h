// Fault-injection subsystem (robustness extension; see DESIGN.md §8).
//
// The paper's MEC setting (Section I) is battery-powered mobile devices on
// wireless uplinks, yet the closed-form models of Eqs. (4)-(9) assume every
// selected user always finishes its local update and upload.  This module
// injects the failure modes the setting implies, deterministically:
//
//   - crashes:      the local update dies partway through; no model is
//                   produced but the cycles burned until the crash still
//                   cost Eq.-(5) energy;
//   - upload loss:  a TDMA upload attempt fails; the trainer may retry with
//                   backoff, each attempt re-occupying the uplink and
//                   costing Eq. (7)/(8) delay and energy;
//   - stragglers:   a transient compute slowdown (thermal throttling,
//                   background load) multiplies the Eq.-(4) delay;
//   - churn:        devices leave and rejoin the selectable fleet between
//                   rounds (mobility, connectivity loss).
//
// Determinism: per-client faults are drawn from an RNG forked per
// (round, user) — like the trainer's mini-batch streams — so outcomes never
// depend on which worker thread runs a client or in what order tasks
// complete (the bitwise thread-count invariance of DESIGN.md §7 holds with
// faults enabled).  Churn is a per-round Markov process advanced on the
// coordinator thread only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/trace.h"
#include "util/rng.h"
#include "util/serial.h"

namespace helcfl::mec {

/// Fault model knobs.  All rates are per-round probabilities in [0, 1].
/// `enabled = false` (the default) makes the injector a strict no-op: no
/// RNG is consumed and every client completes, so training traces are
/// bitwise identical to a build without the subsystem.
struct FaultOptions {
  bool enabled = false;
  /// P(a selected client crashes during its local update).
  double crash_rate = 0.0;
  /// P(one TDMA upload attempt fails); retries redraw independently.
  double upload_failure_rate = 0.0;
  /// P(a selected client suffers a transient compute slowdown this round).
  double straggler_rate = 0.0;
  /// Worst-case slowdown multiplier; an afflicted client's compute delay is
  /// scaled by U(1, straggler_slowdown).  Must be >= 1.
  double straggler_slowdown = 4.0;
  /// P(an available device leaves the selectable fleet before a round).
  double leave_rate = 0.0;
  /// P(an absent device rejoins before a round).  Must be > 0 whenever
  /// leave_rate > 0, or the fleet could drain permanently.
  double rejoin_rate = 0.25;

  /// Throws std::invalid_argument with an actionable message on bad knobs.
  void validate() const;

  /// True when any fault mode can actually trigger.
  bool any_fault_possible() const {
    return crash_rate > 0.0 || upload_failure_rate > 0.0 ||
           straggler_rate > 0.0 || leave_rate > 0.0;
  }
};

/// Everything injected into one client in one round.  Drawn up front on the
/// coordinator thread (deterministic), applied inside the client task.
struct ClientFaults {
  bool crashed = false;
  /// Fraction of the local update completed before the crash, in [0, 1);
  /// scales the wasted Eq.-(5) compute energy.  0 when not crashed.
  double crash_fraction = 0.0;
  /// Compute-delay multiplier, >= 1 (1 = no slowdown).
  double slowdown = 1.0;
  /// Upload attempts that failed before success or give-up.
  std::size_t failed_attempts = 0;
  /// False when every allowed attempt failed: the update is lost.
  bool upload_ok = true;

  /// Total transmissions made (failed + the successful one, if any).
  std::size_t attempts() const { return failed_attempts + (upload_ok ? 1 : 0); }
};

/// Deterministic fault source for a fleet of devices.
class FaultInjector {
 public:
  FaultInjector() = default;
  /// `base` should be a stream forked off the trainer seed; the injector
  /// derives independent sub-streams for churn and per-client draws.
  FaultInjector(std::size_t n_devices, const FaultOptions& options, util::Rng base);

  bool active() const { return options_.enabled && n_devices_ > 0; }
  const FaultOptions& options() const { return options_; }

  /// Attaches a JSONL tracer (borrowed, nullable): every churn transition
  /// becomes a `churn` event.  Pure observation — the Markov draws are
  /// identical with or without a tracer.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Advances availability churn by one round.  Call once per round, on the
  /// coordinator, before selection.  No-op when inactive or leave_rate = 0
  /// (the internal round counter used by churn events still advances).
  void begin_round();

  /// 1 = present in the selectable fleet, 0 = away (churn).  Empty span
  /// when the injector is inactive (everyone available).
  std::span<const std::uint8_t> availability() const;

  /// Devices currently away due to churn.
  std::size_t away_count() const;

  /// Draws client q's faults for round j from a stream forked on (j, q)
  /// alone.  `max_attempts` bounds upload attempts (1 = no retries); must
  /// be >= 1.  Thread-safe: const, touches no mutable state.
  ClientFaults draw(std::size_t round, std::size_t user,
                    std::size_t max_attempts) const;

  std::size_t size() const { return n_devices_; }

  /// Serializes the stream cursors (round counter, churn RNG, availability
  /// mask).  The per-client base stream is derived from the construction
  /// seed and never advances, so it is not stored — an injector rebuilt
  /// from the same seed plus this state replays identical faults.
  void save_state(util::ByteWriter& out) const;

  /// Restores cursors written by save_state() on an injector constructed
  /// with the same fleet size and options.  Parses fully before mutating;
  /// throws util::SerialError on any mismatch.
  void load_state(util::ByteReader& in);

 private:
  std::size_t n_devices_ = 0;
  FaultOptions options_;
  util::Rng client_base_;          ///< parent of the per-(round,user) forks
  util::Rng churn_rng_;            ///< sequential churn stream
  std::vector<std::uint8_t> available_;
  obs::Tracer* tracer_ = nullptr;  ///< optional churn-event sink (borrowed)
  std::size_t round_ = 0;          ///< rounds begun (labels churn events)
};

}  // namespace helcfl::mec
