// User device model (Section II of the paper).
//
// A device is characterized by its DVFS frequency range, effective switched
// capacitance, workload (cycles per sample x local dataset size), and its
// uplink radio parameters.  All quantities are SI: Hz, W, J, s, bits.
#pragma once

#include <cstddef>
#include <string>

namespace helcfl::mec {

/// Immutable description of one user device v_q.
struct Device {
  std::size_t id = 0;  ///< user index q; equals the position in the fleet

  // --- computation (Eqs. 4-5) ---
  double f_min_hz = 0.3e9;          ///< lowest DVFS frequency
  double f_max_hz = 2.0e9;          ///< highest DVFS frequency
  double switched_capacitance = 2e-28;  ///< alpha in Eq. (5); E = alpha/2 * pi*|D| * f^2
  double cycles_per_sample = 1e7;   ///< pi in Eq. (4)
  std::size_t num_samples = 0;      ///< |D_q|

  // --- communication (Eqs. 6-8) ---
  double tx_power_w = 0.2;          ///< p_q
  double channel_gain_sq = 1e-7;    ///< h_q^2 in the SNR of Eq. (6)

  /// Total CPU cycles to process the local dataset once (pi * |D_q|).
  double total_cycles() const {
    return cycles_per_sample * static_cast<double>(num_samples);
  }

  /// Clamps a frequency into [f_min_hz, f_max_hz].
  double clamp_frequency(double f_hz) const;

  /// True when all physical parameters are positive and the frequency range
  /// is non-empty.
  bool is_valid() const;

  /// Diagnostic string.
  std::string to_string() const;
};

}  // namespace helcfl::mec
