#include "mec/faults.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace helcfl::mec {

namespace {

// Sub-stream ids off the injector's base RNG.
constexpr std::uint64_t kChurnStream = 1;
constexpr std::uint64_t kClientStream = 2;

void check_rate(double value, const char* name) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(std::string("FaultOptions: ") + name + " = " +
                                std::to_string(value) +
                                " must be a probability in [0, 1]");
  }
}

}  // namespace

void FaultOptions::validate() const {
  check_rate(crash_rate, "crash_rate");
  check_rate(upload_failure_rate, "upload_failure_rate");
  check_rate(straggler_rate, "straggler_rate");
  check_rate(leave_rate, "leave_rate");
  check_rate(rejoin_rate, "rejoin_rate");
  if (!(straggler_slowdown >= 1.0) || !std::isfinite(straggler_slowdown)) {
    throw std::invalid_argument(
        "FaultOptions: straggler_slowdown = " + std::to_string(straggler_slowdown) +
        " must be a finite multiplier >= 1");
  }
  if (leave_rate > 0.0 && rejoin_rate <= 0.0) {
    throw std::invalid_argument(
        "FaultOptions: rejoin_rate must be > 0 when leave_rate > 0, otherwise "
        "churn drains the fleet permanently");
  }
}

FaultInjector::FaultInjector(std::size_t n_devices, const FaultOptions& options,
                             util::Rng base)
    : n_devices_(n_devices),
      options_(options),
      client_base_(base.fork(kClientStream)),
      churn_rng_(base.fork(kChurnStream)) {
  options_.validate();
  if (active()) available_.assign(n_devices_, 1);
}

void FaultInjector::begin_round() {
  const std::size_t round = round_++;
  if (!active() || options_.leave_rate <= 0.0) return;
  const bool trace =
      tracer_ != nullptr && tracer_->enabled(obs::TraceLevel::kRound);
  for (std::size_t i = 0; i < n_devices_; ++i) {
    if (available_[i] != 0) {
      if (churn_rng_.bernoulli(options_.leave_rate)) {
        available_[i] = 0;
        if (trace) {
          tracer_->emit(obs::TraceLevel::kRound, "churn",
                        {{"round", round}, {"user", i}, {"kind", "leave"}});
        }
      }
    } else {
      if (churn_rng_.bernoulli(options_.rejoin_rate)) {
        available_[i] = 1;
        if (trace) {
          tracer_->emit(obs::TraceLevel::kRound, "churn",
                        {{"round", round}, {"user", i}, {"kind", "rejoin"}});
        }
      }
    }
  }
}

std::span<const std::uint8_t> FaultInjector::availability() const {
  if (!active()) return {};
  return available_;
}

std::size_t FaultInjector::away_count() const {
  std::size_t away = 0;
  for (const auto a : available_) away += a == 0 ? 1 : 0;
  return away;
}

void FaultInjector::save_state(util::ByteWriter& out) const {
  out.u64(static_cast<std::uint64_t>(n_devices_));
  out.boolean(options_.enabled);
  out.u64(static_cast<std::uint64_t>(round_));
  util::write_rng(out, churn_rng_);
  out.vec_u8(available_);
}

void FaultInjector::load_state(util::ByteReader& in) {
  const auto n_devices = static_cast<std::size_t>(in.u64());
  const bool enabled = in.boolean();
  if (n_devices != n_devices_ || enabled != options_.enabled) {
    throw util::SerialError(
        "FaultInjector: state was saved for a differently-configured injector "
        "(n_devices=" + std::to_string(n_devices) + " enabled=" +
        std::to_string(enabled) + ", this injector has n_devices=" +
        std::to_string(n_devices_) + " enabled=" + std::to_string(options_.enabled) +
        ")");
  }
  const auto round = static_cast<std::size_t>(in.u64());
  util::Rng churn_rng = util::read_rng(in);
  std::vector<std::uint8_t> available = in.vec_u8();
  if (available.size() != available_.size()) {
    throw util::SerialError("FaultInjector: availability mask length mismatch");
  }
  round_ = round;
  churn_rng_ = churn_rng;
  available_ = std::move(available);
}

ClientFaults FaultInjector::draw(std::size_t round, std::size_t user,
                                 std::size_t max_attempts) const {
  if (max_attempts == 0) {
    throw std::invalid_argument("FaultInjector::draw: max_attempts must be >= 1");
  }
  ClientFaults faults;
  if (!active()) return faults;

  // One independent stream per (round, user): the draw order below is fixed,
  // so a client's faults are identical no matter when or where its task runs.
  util::Rng rng = client_base_.fork(round * n_devices_ + user);
  if (options_.crash_rate > 0.0 && rng.bernoulli(options_.crash_rate)) {
    faults.crashed = true;
    faults.crash_fraction = rng.uniform();
  }
  if (options_.straggler_rate > 0.0 && rng.bernoulli(options_.straggler_rate)) {
    faults.slowdown = rng.uniform(1.0, options_.straggler_slowdown);
  }
  if (!faults.crashed && options_.upload_failure_rate > 0.0) {
    while (faults.failed_attempts < max_attempts &&
           rng.bernoulli(options_.upload_failure_rate)) {
      ++faults.failed_attempts;
    }
    faults.upload_ok = faults.failed_attempts < max_attempts;
  }
  return faults;
}

}  // namespace helcfl::mec
