#include "mec/channel.h"

#include <cmath>

namespace helcfl::mec {

double Channel::snr(const Device& device) const {
  return device.tx_power_w * device.channel_gain_sq / noise_w;
}

double Channel::upload_rate_bps(const Device& device) const {
  return bandwidth_hz * std::log2(1.0 + snr(device));
}

}  // namespace helcfl::mec
