#include "mec/device.h"

#include <algorithm>
#include <sstream>

namespace helcfl::mec {

double Device::clamp_frequency(double f_hz) const {
  return std::clamp(f_hz, f_min_hz, f_max_hz);
}

bool Device::is_valid() const {
  return f_min_hz > 0.0 && f_max_hz >= f_min_hz && switched_capacitance > 0.0 &&
         cycles_per_sample > 0.0 && tx_power_w > 0.0 && channel_gain_sq > 0.0;
}

std::string Device::to_string() const {
  std::ostringstream out;
  out << "Device{id=" << id << ", f=[" << f_min_hz / 1e9 << ", " << f_max_hz / 1e9
      << "] GHz, |D|=" << num_samples << ", p=" << tx_power_w
      << " W, h^2=" << channel_gain_sq << "}";
  return out.str();
}

}  // namespace helcfl::mec
