#include "mec/fading.h"

#include <cmath>
#include <stdexcept>

namespace helcfl::mec {

FadingProcess::FadingProcess(std::size_t n_devices, const FadingOptions& options,
                             util::Rng rng)
    : options_(options), rng_(rng) {
  if (options.rho < 0.0 || options.rho >= 1.0) {
    throw std::invalid_argument("FadingProcess: rho must be in [0, 1)");
  }
  if (options.sigma_db < 0.0) {
    throw std::invalid_argument("FadingProcess: sigma_db must be >= 0");
  }
  states_db_.resize(n_devices, 0.0);
  if (options_.enabled) {
    for (auto& state : states_db_) state = rng_.normal(0.0, options_.sigma_db);
  }
}

void FadingProcess::step() {
  if (!options_.enabled) return;
  const double innovation_scale =
      options_.sigma_db * std::sqrt(1.0 - options_.rho * options_.rho);
  for (auto& state : states_db_) {
    state = options_.rho * state + rng_.normal(0.0, innovation_scale);
  }
}

double FadingProcess::multiplier(std::size_t i) const {
  if (!options_.enabled) return 1.0;
  return std::pow(10.0, states_db_.at(i) / 10.0);
}

}  // namespace helcfl::mec
