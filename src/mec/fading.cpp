#include "mec/fading.h"

#include <cmath>
#include <stdexcept>

namespace helcfl::mec {

FadingProcess::FadingProcess(std::size_t n_devices, const FadingOptions& options,
                             util::Rng rng)
    : options_(options), rng_(rng) {
  if (options.rho < 0.0 || options.rho >= 1.0) {
    throw std::invalid_argument("FadingProcess: rho must be in [0, 1)");
  }
  if (options.sigma_db < 0.0) {
    throw std::invalid_argument("FadingProcess: sigma_db must be >= 0");
  }
  states_db_.resize(n_devices, 0.0);
  if (options_.enabled) {
    for (auto& state : states_db_) state = rng_.normal(0.0, options_.sigma_db);
  }
}

void FadingProcess::step() {
  if (!options_.enabled) return;
  const double innovation_scale =
      options_.sigma_db * std::sqrt(1.0 - options_.rho * options_.rho);
  for (auto& state : states_db_) {
    state = options_.rho * state + rng_.normal(0.0, innovation_scale);
  }
}

void FadingProcess::save_state(util::ByteWriter& out) const {
  out.boolean(options_.enabled);
  util::write_rng(out, rng_);
  out.vec_f64(states_db_);
}

void FadingProcess::load_state(util::ByteReader& in) {
  const bool enabled = in.boolean();
  if (enabled != options_.enabled) {
    throw util::SerialError(
        "FadingProcess: state was saved with fading " +
        std::string(enabled ? "enabled" : "disabled") + ", this process has it " +
        std::string(options_.enabled ? "enabled" : "disabled"));
  }
  util::Rng rng = util::read_rng(in);
  std::vector<double> states = in.vec_f64();
  if (states.size() != states_db_.size()) {
    throw util::SerialError("FadingProcess: device count mismatch in saved state");
  }
  rng_ = rng;
  states_db_ = std::move(states);
}

double FadingProcess::multiplier(std::size_t i) const {
  if (!options_.enabled) return 1.0;
  return std::pow(10.0, states_db_.at(i) / 10.0);
}

}  // namespace helcfl::mec
