// Battery model (extension; see DESIGN.md §6).
//
// The paper motivates its energy optimization with "the energy of user
// devices is quickly exhausted or even device shutdown occurs during FL
// training" (Section I).  This module makes that concrete: each device
// carries a finite energy budget; once depleted the device drops out of
// the selectable fleet.  The bench_ext_battery_lifetime experiment uses it
// to show that Algorithm 3's savings translate into longer fleet lifetime
// and more reachable accuracy under a fixed per-device budget.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/serial.h"

namespace helcfl::mec {

/// One device's energy budget.
class Battery {
 public:
  Battery() = default;
  /// `capacity_j` <= 0 means "mains powered": never depletes.
  explicit Battery(double capacity_j)
      : capacity_j_(capacity_j), remaining_j_(capacity_j) {}

  bool is_mains_powered() const { return capacity_j_ <= 0.0; }

  /// True once the remaining charge has hit zero (never for mains power).
  bool depleted() const { return !is_mains_powered() && remaining_j_ <= 0.0; }

  /// Withdraws up to `joules`; returns the amount actually drained (the
  /// last round of a dying device may overdraw, which is clamped).
  double drain(double joules);

  /// True when the battery can fund an expense of `joules` right now.
  bool can_afford(double joules) const {
    return is_mains_powered() || remaining_j_ >= joules;
  }

  double capacity_j() const { return capacity_j_; }
  double remaining_j() const { return is_mains_powered() ? 0.0 : remaining_j_; }

  /// Remaining fraction in [0, 1]; 1 for mains power.
  double state_of_charge() const;

  /// Overwrites the remaining charge (checkpoint resume).  Clamped to
  /// [0, capacity]; no-op for mains power.
  void restore_remaining_j(double joules);

 private:
  double capacity_j_ = 0.0;
  double remaining_j_ = 0.0;
};

/// The batteries of a whole fleet plus the derived availability mask.
class BatteryFleet {
 public:
  BatteryFleet() = default;
  /// All devices share the same capacity.  capacity_j <= 0 = mains power.
  BatteryFleet(std::size_t n_devices, double capacity_j);
  /// Heterogeneous capacities.
  explicit BatteryFleet(std::vector<double> capacities_j);

  std::size_t size() const { return batteries_.size(); }
  const Battery& battery(std::size_t i) const { return batteries_.at(i); }

  /// Drains device i; updates the availability mask.
  double drain(std::size_t i, double joules);

  bool is_alive(std::size_t i) const { return alive_.at(i) != 0; }
  std::size_t alive_count() const;

  /// 1 = selectable, 0 = depleted; aligned with device indices and
  /// directly usable as FleetView::alive.
  std::span<const std::uint8_t> alive_mask() const { return alive_; }

  /// Mean state of charge over all devices.
  double mean_state_of_charge() const;

  /// Serializes capacities (as a configuration echo) and remaining charge.
  void save_state(util::ByteWriter& out) const;

  /// Restores charge written by save_state() on a fleet constructed with
  /// identical capacities; recomputes the alive mask.  Parses fully before
  /// mutating; throws util::SerialError on mismatch.
  void load_state(util::ByteReader& in);

 private:
  std::vector<Battery> batteries_;
  std::vector<std::uint8_t> alive_;
};

}  // namespace helcfl::mec
