#include "mec/tdma.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace helcfl::mec {

TdmaSchedule schedule_uploads(std::span<const double> compute_delays,
                              std::span<const double> upload_durations) {
  if (compute_delays.size() != upload_durations.size()) {
    throw std::invalid_argument("schedule_uploads: span length mismatch");
  }
  for (std::size_t i = 0; i < compute_delays.size(); ++i) {
    if (compute_delays[i] < 0.0 || upload_durations[i] < 0.0) {
      throw std::invalid_argument("schedule_uploads: negative delay");
    }
  }

  // Grant order: by compute completion, ties by index (deterministic).
  std::vector<std::size_t> order(compute_delays.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return compute_delays[a] < compute_delays[b];
  });

  TdmaSchedule schedule;
  schedule.slots.reserve(order.size());
  double link_free_at = 0.0;
  for (const std::size_t i : order) {
    UploadSlot slot;
    slot.index = i;
    slot.compute_end = compute_delays[i];
    slot.upload_start = std::max(slot.compute_end, link_free_at);
    slot.upload_end = slot.upload_start + upload_durations[i];
    slot.slack_s = slot.upload_start - slot.compute_end;
    link_free_at = slot.upload_end;
    schedule.total_slack_s += slot.slack_s;
    schedule.round_delay_s = std::max(schedule.round_delay_s, slot.upload_end);
    schedule.slots.push_back(slot);
  }
  return schedule;
}

}  // namespace helcfl::mec
