// TDMA uplink serialization (Fig. 1 of the paper).
//
// Selected users compute in parallel but share one uplink: a user whose
// local update finishes while another user is still uploading must wait.
// schedule_uploads() reconstructs that timeline: grants are issued in
// compute-completion order (ties broken by position), and each user's
// *slack* is the waiting gap that HELCFL's Algorithm 3 reclaims by slowing
// the CPU.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace helcfl::mec {

/// One user's segment of the round timeline.  Times are seconds from the
/// start of the round.
struct UploadSlot {
  std::size_t index = 0;        ///< position in the input spans
  double compute_end = 0.0;     ///< when the local update finishes
  double upload_start = 0.0;    ///< when the uplink grant begins
  double upload_end = 0.0;      ///< upload_start + upload duration
  double slack_s = 0.0;         ///< upload_start - compute_end (idle wait)
};

/// The full round timeline.
struct TdmaSchedule {
  std::vector<UploadSlot> slots;  ///< in grant order
  double round_delay_s = 0.0;     ///< max upload_end (Eq. 10 under TDMA)
  double total_slack_s = 0.0;     ///< sum of all users' slack
};

/// Serializes the uploads of users with the given compute delays and upload
/// durations.  Spans must have equal length; all entries non-negative.
TdmaSchedule schedule_uploads(std::span<const double> compute_delays,
                              std::span<const double> upload_durations);

}  // namespace helcfl::mec
