#include "mec/cost_model.h"

#include <cassert>
#include <stdexcept>

namespace helcfl::mec {

double compute_delay_s(const Device& device, double f_hz) {
  if (f_hz <= 0.0) throw std::invalid_argument("compute_delay_s: f must be > 0");
  return device.total_cycles() / f_hz;
}

double compute_energy_j(const Device& device, double f_hz) {
  if (f_hz < 0.0) throw std::invalid_argument("compute_energy_j: f must be >= 0");
  return device.switched_capacitance / 2.0 * device.total_cycles() * f_hz * f_hz;
}

double upload_delay_s(const Device& device, const Channel& channel,
                      double model_size_bits) {
  const double rate = channel.upload_rate_bps(device);
  assert(rate > 0.0);
  return model_size_bits / rate;
}

double upload_energy_j(const Device& device, const Channel& channel,
                       double model_size_bits) {
  return device.tx_power_w * upload_delay_s(device, channel, model_size_bits);
}

UserCost user_cost(const Device& device, const Channel& channel,
                   double model_size_bits, double f_hz) {
  UserCost cost;
  cost.compute_delay_s = compute_delay_s(device, f_hz);
  cost.compute_energy_j = compute_energy_j(device, f_hz);
  cost.upload_delay_s = upload_delay_s(device, channel, model_size_bits);
  cost.upload_energy_j = upload_energy_j(device, channel, model_size_bits);
  return cost;
}

}  // namespace helcfl::mec
