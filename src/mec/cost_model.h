// Closed-form delay and energy models (Eqs. 4, 5, 7, 8, 9 of the paper).
#pragma once

#include "mec/channel.h"
#include "mec/device.h"

namespace helcfl::mec {

/// Delay and energy of one user in one training round.
struct UserCost {
  double compute_delay_s = 0.0;   ///< T^cal, Eq. (4)
  double upload_delay_s = 0.0;    ///< T^com, Eq. (7)
  double compute_energy_j = 0.0;  ///< E^cal, Eq. (5)
  double upload_energy_j = 0.0;   ///< E^com, Eq. (8)

  double total_delay_s() const { return compute_delay_s + upload_delay_s; }   // Eq. (9)
  double total_energy_j() const { return compute_energy_j + upload_energy_j; }
};

/// T^cal = pi * |D| / f  (Eq. 4).  Requires f > 0.
double compute_delay_s(const Device& device, double f_hz);

/// E^cal = alpha/2 * pi * |D| * f^2  (Eq. 5).
double compute_energy_j(const Device& device, double f_hz);

/// T^com = C_model / R  (Eq. 7).
double upload_delay_s(const Device& device, const Channel& channel,
                      double model_size_bits);

/// E^com = p * T^com  (Eq. 8).
double upload_energy_j(const Device& device, const Channel& channel,
                       double model_size_bits);

/// All four costs of one round at operating frequency `f_hz`.
UserCost user_cost(const Device& device, const Channel& channel,
                   double model_size_bits, double f_hz);

}  // namespace helcfl::mec
