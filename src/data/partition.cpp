#include "data/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace helcfl::data {

Partition iid_partition(std::size_t n_samples, std::size_t n_users, util::Rng& rng) {
  if (n_users == 0) throw std::invalid_argument("iid_partition: n_users must be > 0");
  std::vector<std::size_t> order = rng.permutation(n_samples);
  Partition partition(n_users);
  const std::size_t base = n_samples / n_users;
  const std::size_t remainder = n_samples % n_users;
  std::size_t cursor = 0;
  for (std::size_t u = 0; u < n_users; ++u) {
    const std::size_t take = base + (u < remainder ? 1 : 0);
    partition[u].assign(order.begin() + static_cast<std::ptrdiff_t>(cursor),
                        order.begin() + static_cast<std::ptrdiff_t>(cursor + take));
    cursor += take;
  }
  return partition;
}

Partition shard_noniid_partition(std::span<const std::int32_t> labels,
                                 std::size_t n_users, std::size_t shards_per_user,
                                 util::Rng& rng) {
  if (n_users == 0 || shards_per_user == 0) {
    throw std::invalid_argument("shard_noniid_partition: zero users or shards");
  }
  const std::size_t n_samples = labels.size();
  const std::size_t n_shards = n_users * shards_per_user;
  if (n_shards > n_samples) {
    throw std::invalid_argument("shard_noniid_partition: more shards than samples");
  }

  // Sort sample indices by label (stable, so ties keep original order).
  std::vector<std::size_t> order(n_samples);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return labels[a] < labels[b]; });

  // Cut into contiguous shards (remainder spread over the first shards).
  std::vector<std::pair<std::size_t, std::size_t>> shard_ranges;  // [begin, end)
  shard_ranges.reserve(n_shards);
  const std::size_t base = n_samples / n_shards;
  const std::size_t remainder = n_samples % n_shards;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < n_shards; ++s) {
    const std::size_t take = base + (s < remainder ? 1 : 0);
    shard_ranges.emplace_back(cursor, cursor + take);
    cursor += take;
  }

  // Deal shards to users at random, shards_per_user each.
  std::vector<std::size_t> shard_order = rng.permutation(n_shards);
  Partition partition(n_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    for (std::size_t k = 0; k < shards_per_user; ++k) {
      const auto [begin, end] = shard_ranges[shard_order[u * shards_per_user + k]];
      for (std::size_t i = begin; i < end; ++i) partition[u].push_back(order[i]);
    }
  }
  return partition;
}

Partition dirichlet_partition(std::span<const std::int32_t> labels,
                              std::size_t n_users, std::size_t n_classes, double alpha,
                              util::Rng& rng) {
  if (n_users == 0) throw std::invalid_argument("dirichlet_partition: n_users == 0");
  if (alpha <= 0.0) throw std::invalid_argument("dirichlet_partition: alpha <= 0");

  // Group sample indices by class.
  std::vector<std::vector<std::size_t>> by_class(n_classes);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[static_cast<std::size_t>(labels[i])].push_back(i);
  }

  Partition partition(n_users);
  for (std::size_t k = 0; k < n_classes; ++k) {
    auto& pool = by_class[k];
    rng.shuffle(std::span<std::size_t>(pool));

    // Draw Dirichlet weights via normalized Gamma(alpha, 1) samples.
    // Gamma sampled with the Marsaglia-Tsang method (alpha boosted by 1 for
    // alpha < 1, with the standard correction factor).
    std::vector<double> weights(n_users, 0.0);
    double total = 0.0;
    for (auto& weight : weights) {
      const double boosted_alpha = alpha < 1.0 ? alpha + 1.0 : alpha;
      const double d = boosted_alpha - 1.0 / 3.0;
      const double c = 1.0 / std::sqrt(9.0 * d);
      double sample = 0.0;
      for (;;) {
        double x = rng.normal();
        double v = 1.0 + c * x;
        if (v <= 0.0) continue;
        v = v * v * v;
        const double u = rng.uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x ||
            std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
          sample = d * v;
          break;
        }
      }
      if (alpha < 1.0) sample *= std::pow(rng.uniform(), 1.0 / alpha);
      weight = sample;
      total += weight;
    }

    // Convert weights to sample counts (largest remainders get the leftovers).
    std::size_t assigned = 0;
    std::vector<std::size_t> counts(n_users, 0);
    for (std::size_t u = 0; u < n_users; ++u) {
      counts[u] = static_cast<std::size_t>(
          std::floor(weights[u] / total * static_cast<double>(pool.size())));
      assigned += counts[u];
    }
    std::size_t u = 0;
    while (assigned < pool.size()) {
      ++counts[u % n_users];
      ++assigned;
      ++u;
    }

    std::size_t cursor = 0;
    for (std::size_t user = 0; user < n_users; ++user) {
      for (std::size_t i = 0; i < counts[user]; ++i) {
        partition[user].push_back(pool[cursor++]);
      }
    }
  }
  return partition;
}

std::vector<std::size_t> classes_per_user(const Partition& partition,
                                          std::span<const std::int32_t> labels,
                                          std::size_t n_classes) {
  std::vector<std::size_t> result;
  result.reserve(partition.size());
  for (const auto& slice : partition) {
    std::vector<bool> seen(n_classes, false);
    for (const std::size_t i : slice) seen[static_cast<std::size_t>(labels[i])] = true;
    result.push_back(static_cast<std::size_t>(
        std::count(seen.begin(), seen.end(), true)));
  }
  return result;
}

bool is_exact_cover(const Partition& partition, std::size_t n_samples) {
  std::vector<std::size_t> hits(n_samples, 0);
  for (const auto& slice : partition) {
    for (const std::size_t i : slice) {
      if (i >= n_samples) return false;
      ++hits[i];
    }
  }
  return std::all_of(hits.begin(), hits.end(), [](std::size_t h) { return h == 1; });
}

}  // namespace helcfl::data
