#include "data/dataset.h"

#include <cassert>
#include <stdexcept>

namespace helcfl::data {

using tensor::Shape;
using tensor::Tensor;

Dataset::Dataset(Tensor images, std::vector<std::int32_t> labels,
                 std::size_t num_classes)
    : images_(std::move(images)), labels_(std::move(labels)), num_classes_(num_classes) {
  if (images_.shape().rank() != 4) {
    throw std::invalid_argument("Dataset: images must be [N, C, H, W], got " +
                                images_.shape().to_string());
  }
  if (images_.shape()[0] != labels_.size()) {
    throw std::invalid_argument("Dataset: image/label count mismatch");
  }
  for (const auto label : labels_) {
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes_) {
      throw std::invalid_argument("Dataset: label out of range");
    }
  }
}

nn::ImageSpec Dataset::spec() const {
  return {images_.shape()[1], images_.shape()[2], images_.shape()[3]};
}

Batch Dataset::gather(std::span<const std::size_t> indices) const {
  const std::size_t sample_size =
      images_.shape()[1] * images_.shape()[2] * images_.shape()[3];
  Batch batch;
  batch.images = Tensor(Shape{indices.size(), images_.shape()[1], images_.shape()[2],
                              images_.shape()[3]});
  batch.labels.reserve(indices.size());
  for (std::size_t out = 0; out < indices.size(); ++out) {
    const std::size_t i = indices[out];
    assert(i < size());
    for (std::size_t j = 0; j < sample_size; ++j) {
      batch.images[out * sample_size + j] = images_[i * sample_size + j];
    }
    batch.labels.push_back(labels_[i]);
  }
  return batch;
}

Batch Dataset::all() const {
  Batch batch;
  batch.images = images_;
  batch.labels = labels_;
  return batch;
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> histogram(num_classes_, 0);
  for (const auto label : labels_) ++histogram[static_cast<std::size_t>(label)];
  return histogram;
}

std::vector<std::size_t> Dataset::class_histogram(
    std::span<const std::size_t> indices) const {
  std::vector<std::size_t> histogram(num_classes_, 0);
  for (const std::size_t i : indices) {
    ++histogram[static_cast<std::size_t>(labels_[i])];
  }
  return histogram;
}

}  // namespace helcfl::data
