// Partitioning a training set across FL users.
//
// The paper evaluates two regimes (Section VII-A):
//   * IID: "training samples are randomly shuffled and evenly assigned";
//   * Non-IID: "training samples are sorted by labels and cut into 400
//     pieces, and each four pieces are assigned a user" — the classic
//     McMahan et al. shard scheme.
// A Dirichlet partitioner is provided as an extension for ablations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace helcfl::data {

/// Per-user lists of sample indices into the training set.
using Partition = std::vector<std::vector<std::size_t>>;

/// Random shuffle, then contiguous equal chunks (remainder spread over the
/// first users).  Every sample is assigned exactly once.
Partition iid_partition(std::size_t n_samples, std::size_t n_users, util::Rng& rng);

/// Sort-by-label shard partition: indices sorted by label, cut into
/// n_users * shards_per_user shards, and each user receives
/// shards_per_user randomly chosen shards.  With shards_per_user smaller
/// than the class count each user sees only a few classes.
Partition shard_noniid_partition(std::span<const std::int32_t> labels,
                                 std::size_t n_users, std::size_t shards_per_user,
                                 util::Rng& rng);

/// Dirichlet(alpha) label-skew partition (extension; not in the paper).
/// Smaller alpha = more skew.  Every sample is assigned exactly once.
Partition dirichlet_partition(std::span<const std::int32_t> labels,
                              std::size_t n_users, std::size_t n_classes, double alpha,
                              util::Rng& rng);

/// Number of distinct labels present in each user's slice.
std::vector<std::size_t> classes_per_user(const Partition& partition,
                                          std::span<const std::int32_t> labels,
                                          std::size_t n_classes);

/// Sanity check: each index in [0, n_samples) appears exactly once.
bool is_exact_cover(const Partition& partition, std::size_t n_samples);

}  // namespace helcfl::data
