// Labeled image dataset container and batch extraction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/models.h"
#include "tensor/tensor.h"

namespace helcfl::data {

/// A batch ready for the model: images [B, C, H, W] plus labels.
struct Batch {
  tensor::Tensor images;
  std::vector<std::int32_t> labels;

  std::size_t size() const { return labels.size(); }
};

/// In-memory dataset of labeled images, stored [N, C, H, W].
class Dataset {
 public:
  Dataset() = default;
  /// Takes ownership of storage.  images.shape()[0] must equal labels.size();
  /// labels must be in [0, num_classes).
  Dataset(tensor::Tensor images, std::vector<std::int32_t> labels,
          std::size_t num_classes);

  std::size_t size() const { return labels_.size(); }
  std::size_t num_classes() const { return num_classes_; }
  nn::ImageSpec spec() const;

  const tensor::Tensor& images() const { return images_; }
  std::span<const std::int32_t> labels() const { return labels_; }
  std::int32_t label(std::size_t i) const { return labels_[i]; }

  /// Copies the samples at `indices` into a contiguous batch.
  Batch gather(std::span<const std::size_t> indices) const;

  /// The whole dataset as one batch (copy).
  Batch all() const;

  /// Number of samples per class, length num_classes().
  std::vector<std::size_t> class_histogram() const;

  /// Same histogram restricted to `indices`.
  std::vector<std::size_t> class_histogram(std::span<const std::size_t> indices) const;

 private:
  tensor::Tensor images_;
  std::vector<std::int32_t> labels_;
  std::size_t num_classes_ = 0;
};

}  // namespace helcfl::data
