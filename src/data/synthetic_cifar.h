// Synthetic CIFAR-10-like dataset.
//
// Real CIFAR-10 pixels are not available in this offline build, so we
// generate a 10-class image classification task with the properties the
// paper's experiments rely on (see DESIGN.md):
//   * classes are separable but not trivially: each class has a smooth
//     random prototype per channel, samples add pixel noise and a random
//     circular shift, and a fraction of labels is flipped so that accuracy
//     saturates below 100%;
//   * a model trained on a subset of classes cannot predict the rest, so
//     non-IID exclusion of users caps reachable accuracy — the mechanism
//     behind FedCS's accuracy ceiling in Fig. 2 / Table I.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "util/rng.h"

namespace helcfl::data {

/// Generator parameters.  Defaults are tuned so a small MLP reaches
/// ~80-90% test accuracy with all data under IID training.
struct SyntheticCifarOptions {
  std::size_t num_classes = 10;
  std::size_t channels = 3;
  std::size_t height = 8;
  std::size_t width = 8;
  std::size_t train_samples = 4000;
  std::size_t test_samples = 1000;
  float noise_stddev = 2.2F;     ///< pixel noise added to the class prototype
  std::size_t max_shift = 1;     ///< circular shift in pixels, drawn U[0, max_shift]
  float label_noise = 0.12F;     ///< fraction of labels re-drawn uniformly
  float prototype_scale = 1.0F;  ///< amplitude of class prototypes
};

/// Train and test split drawn from the same generative process.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Generates the dataset.  Deterministic given `rng`'s state.
TrainTestSplit make_synthetic_cifar(const SyntheticCifarOptions& options,
                                    util::Rng& rng);

}  // namespace helcfl::data
