#include "data/synthetic_cifar.h"

#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace helcfl::data {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Smooth random field: sum of a few random 2-D sinusoids.  Gives each
/// class a distinctive low-frequency texture per channel.
class SmoothField {
 public:
  SmoothField(util::Rng& rng, float scale) {
    for (auto& c : components_) {
      c.fx = rng.uniform(0.5, 2.5);
      c.fy = rng.uniform(0.5, 2.5);
      c.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
      c.amp = scale * static_cast<float>(rng.uniform(0.4, 1.0));
    }
  }

  float sample(double u, double v) const {
    double value = 0.0;
    for (const auto& c : components_) {
      value += c.amp * std::sin(2.0 * std::numbers::pi * (c.fx * u + c.fy * v) + c.phase);
    }
    return static_cast<float>(value);
  }

 private:
  struct Component {
    double fx = 0.0, fy = 0.0, phase = 0.0;
    float amp = 0.0F;
  };
  std::array<Component, 3> components_{};
};

struct ClassPrototype {
  // One field per channel.
  std::vector<SmoothField> fields;
};

Dataset generate(const SyntheticCifarOptions& options,
                 const std::vector<ClassPrototype>& prototypes, std::size_t count,
                 util::Rng& rng) {
  const std::size_t c = options.channels;
  const std::size_t h = options.height;
  const std::size_t w = options.width;
  Tensor images(Shape{count, c, h, w});
  std::vector<std::int32_t> labels(count, 0);

  for (std::size_t n = 0; n < count; ++n) {
    const auto true_class =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(
                                                        options.num_classes) - 1));
    const auto shift_y = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(options.max_shift)));
    const auto shift_x = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(options.max_shift)));

    for (std::size_t ch = 0; ch < c; ++ch) {
      const SmoothField& field = prototypes[true_class].fields[ch];
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          const std::size_t sy = (y + shift_y) % h;
          const std::size_t sx = (x + shift_x) % w;
          const double u = static_cast<double>(sx) / static_cast<double>(w);
          const double v = static_cast<double>(sy) / static_cast<double>(h);
          const float clean = field.sample(u, v);
          images.at(n, ch, y, x) =
              clean + static_cast<float>(rng.normal(0.0, options.noise_stddev));
        }
      }
    }

    // Label noise: re-draw uniformly with probability label_noise; this caps
    // the Bayes-optimal accuracy below 100% like real CIFAR-10 does for
    // small models.
    std::size_t label = true_class;
    if (options.label_noise > 0.0F && rng.bernoulli(options.label_noise)) {
      label = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(options.num_classes) - 1));
    }
    labels[n] = static_cast<std::int32_t>(label);
  }
  return Dataset(std::move(images), std::move(labels), options.num_classes);
}

}  // namespace

TrainTestSplit make_synthetic_cifar(const SyntheticCifarOptions& options,
                                    util::Rng& rng) {
  if (options.num_classes == 0 || options.channels == 0 || options.height == 0 ||
      options.width == 0) {
    throw std::invalid_argument("make_synthetic_cifar: zero-sized dimension");
  }
  std::vector<ClassPrototype> prototypes;
  prototypes.reserve(options.num_classes);
  for (std::size_t k = 0; k < options.num_classes; ++k) {
    ClassPrototype proto;
    proto.fields.reserve(options.channels);
    for (std::size_t ch = 0; ch < options.channels; ++ch) {
      proto.fields.emplace_back(rng, options.prototype_scale);
    }
    prototypes.push_back(std::move(proto));
  }

  TrainTestSplit split;
  split.train = generate(options, prototypes, options.train_samples, rng);
  split.test = generate(options, prototypes, options.test_samples, rng);
  return split;
}

}  // namespace helcfl::data
