// SqueezeNet Fire module (Iandola et al., 2016): a 1x1 "squeeze"
// convolution followed by parallel 1x1 and 3x3 "expand" convolutions whose
// outputs are concatenated along the channel axis.  All three convolutions
// are followed by ReLU.
#pragma once

#include <memory>

#include "nn/conv2d.h"
#include "nn/layer.h"

namespace helcfl::util {
class Rng;
}

namespace helcfl::nn {

class Fire : public Layer {
 public:
  /// Output channel count is expand1x1 + expand3x3.
  Fire(std::size_t in_channels, std::size_t squeeze, std::size_t expand1x1,
       std::size_t expand3x3, util::Rng& rng);
  Fire(const Fire& other);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  void mark_weights_dirty() override {
    squeeze_.mark_weights_dirty();
    expand1_.mark_weights_dirty();
    expand3_.mark_weights_dirty();
  }
  std::string name() const override;

  std::size_t out_channels() const { return expand1_channels_ + expand3_channels_; }

 private:
  std::size_t expand1_channels_;
  std::size_t expand3_channels_;
  Conv2D squeeze_;
  Conv2D expand1_;
  Conv2D expand3_;
  // Cached training-mode activations for ReLU backward.
  tensor::Tensor squeeze_out_;  // post-ReLU squeeze activation
  tensor::Tensor expand1_out_;  // post-ReLU expand1x1 activation
  tensor::Tensor expand3_out_;  // post-ReLU expand3x3 activation
};

}  // namespace helcfl::nn
