#include "nn/dropout.h"

#include <cassert>
#include <stdexcept>

namespace helcfl::nn {

using tensor::Tensor;

Dropout::Dropout(float p, util::Rng& rng) : p_(p), rng_(rng.fork(0x6d61736bULL)) {
  if (p < 0.0F || p >= 1.0F) {
    throw std::invalid_argument("Dropout: p must be in [0, 1), got " +
                                std::to_string(p));
  }
}

Dropout::Dropout(const Dropout& other) : Layer(), p_(other.p_), rng_(other.rng_) {}

std::unique_ptr<Layer> Dropout::clone() const {
  return std::make_unique<Dropout>(*this);
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training || p_ == 0.0F) {
    mask_ = Tensor();  // inference mode: nothing cached
    return input;
  }
  mask_ = Tensor(input.shape());
  const float keep_scale = 1.0F / (1.0F - p_);
  Tensor output = input;
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (rng_.bernoulli(p_)) {
      mask_[i] = 0.0F;
      output[i] = 0.0F;
    } else {
      mask_[i] = keep_scale;
      output[i] *= keep_scale;
    }
  }
  return output;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;  // forward ran in inference mode
  assert(grad_output.shape() == mask_.shape());
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) grad_input[i] *= mask_[i];
  return grad_input;
}

std::string Dropout::name() const { return "Dropout(" + std::to_string(p_) + ")"; }

}  // namespace helcfl::nn
