// Flattens [N, C, H, W] (or any rank >= 2) to [N, features].
#pragma once

#include "nn/layer.h"

namespace helcfl::nn {

class Flatten : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>();
  }
  std::string name() const override { return "Flatten"; }

 private:
  tensor::Shape input_shape_;
};

}  // namespace helcfl::nn
