// Fully connected layer: y = x W^T + b.
#pragma once

#include <cstddef>

#include "nn/layer.h"
#include "tensor/ops.h"

namespace helcfl::util {
class Rng;
}

namespace helcfl::nn {

/// Dense (fully connected) layer over rank-2 input [batch, in_features].
/// Weight is stored [out_features, in_features]; bias [out_features].
class Dense : public Layer {
 public:
  /// He-initializes the weight with `rng`; bias starts at zero.
  Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng);
  Dense(const Dense& other);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  void mark_weights_dirty() override { packed_.invalidate(); }
  std::string name() const override;

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  tensor::Tensor weight_;       // [out, in]
  tensor::Tensor bias_;         // [out]
  tensor::Tensor grad_weight_;  // [out, in]
  tensor::Tensor grad_bias_;    // [out]
  tensor::Tensor cached_input_;  // [batch, in], training forward only
  // Weight panels in the kernel's layout, repacked lazily after every
  // weight mutation (see Layer::mark_weights_dirty) and reused across
  // forwards — the FedAvg global model forwards N clients per pack.
  tensor::PackedWeights packed_;
};

}  // namespace helcfl::nn
