#include "nn/loss.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace helcfl::nn {

using tensor::Shape;
using tensor::Tensor;

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: logits must be rank-2, got " +
                                logits.shape().to_string());
  }
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  if (labels.size() != batch) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }

  LossResult result;
  result.probabilities = Tensor(Shape{batch, classes});
  result.grad_logits = Tensor(Shape{batch, classes});

  double total_nll = 0.0;
  const float inv_batch = 1.0F / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto label = static_cast<std::size_t>(labels[b]);
    assert(labels[b] >= 0 && label < classes);

    float max_logit = logits.at(b, 0);
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (logits.at(b, c) > max_logit) {
        max_logit = logits.at(b, c);
        argmax = c;
      }
    }
    if (argmax == label) ++result.correct;

    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(logits.at(b, c) - max_logit));
    }
    const double log_denom = std::log(denom);
    for (std::size_t c = 0; c < classes; ++c) {
      const double log_p =
          static_cast<double>(logits.at(b, c) - max_logit) - log_denom;
      const auto p = static_cast<float>(std::exp(log_p));
      result.probabilities.at(b, c) = p;
      result.grad_logits.at(b, c) = p * inv_batch;
      if (c == label) total_nll -= log_p;
    }
    result.grad_logits.at(b, label) -= inv_batch;
  }
  result.loss = total_nll / static_cast<double>(batch);
  return result;
}

std::size_t count_correct(const Tensor& logits, std::span<const std::int32_t> labels) {
  assert(logits.shape().rank() == 2 && logits.shape()[0] == labels.size());
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  std::size_t correct = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (logits.at(b, c) > logits.at(b, argmax)) argmax = c;
    }
    if (argmax == static_cast<std::size_t>(labels[b])) ++correct;
  }
  return correct;
}

}  // namespace helcfl::nn
