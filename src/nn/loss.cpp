#include "nn/loss.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace helcfl::nn {

using tensor::Shape;
using tensor::Tensor;

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: logits must be rank-2, got " +
                                logits.shape().to_string());
  }
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  if (labels.size() != batch) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }

  LossResult result;
  result.probabilities = Tensor(Shape{batch, classes});
  result.grad_logits = Tensor(Shape{batch, classes});

  double total_nll = 0.0;
  const float inv_batch = 1.0F / static_cast<float>(batch);
  // Contiguous row pointers keep these loops vectorizable; the log-sum-exp
  // reduction stays in double (accumulation policy, tensor/ops.h).
  const float* logit_rows = logits.data().data();
  float* prob_rows = result.probabilities.data().data();
  float* grad_rows = result.grad_logits.data().data();
  for (std::size_t b = 0; b < batch; ++b) {
    const auto label = static_cast<std::size_t>(labels[b]);
    assert(labels[b] >= 0 && label < classes);
    const float* logit = logit_rows + b * classes;
    float* prob = prob_rows + b * classes;
    float* grad = grad_rows + b * classes;

    float max_logit = logit[0];
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (logit[c] > max_logit) {
        max_logit = logit[c];
        argmax = c;
      }
    }
    if (argmax == label) ++result.correct;

    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(logit[c] - max_logit));
    }
    const double log_denom = std::log(denom);
    for (std::size_t c = 0; c < classes; ++c) {
      const double log_p = static_cast<double>(logit[c] - max_logit) - log_denom;
      const auto p = static_cast<float>(std::exp(log_p));
      prob[c] = p;
      grad[c] = p * inv_batch;
      if (c == label) total_nll -= log_p;
    }
    grad[label] -= inv_batch;
  }
  result.loss = total_nll / static_cast<double>(batch);
  return result;
}

std::size_t count_correct(const Tensor& logits, std::span<const std::int32_t> labels) {
  assert(logits.shape().rank() == 2 && logits.shape()[0] == labels.size());
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  std::size_t correct = 0;
  const float* rows = logits.data().data();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = rows + b * classes;
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (row[c] > row[argmax]) argmax = c;
    }
    if (argmax == static_cast<std::size_t>(labels[b])) ++correct;
  }
  return correct;
}

}  // namespace helcfl::nn
