#include "nn/models.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/fire.h"
#include "nn/flatten.h"
#include "nn/pool.h"

namespace helcfl::nn {

ModelKind parse_model_kind(const std::string& text) {
  if (text == "logistic") return ModelKind::kLogistic;
  if (text == "mlp") return ModelKind::kMlp;
  if (text == "small_cnn") return ModelKind::kSmallCnn;
  if (text == "mini_squeezenet") return ModelKind::kMiniSqueezeNet;
  throw std::invalid_argument("unknown model kind: " + text);
}

std::string model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLogistic: return "logistic";
    case ModelKind::kMlp: return "mlp";
    case ModelKind::kSmallCnn: return "small_cnn";
    case ModelKind::kMiniSqueezeNet: return "mini_squeezenet";
  }
  return "unknown";
}

std::unique_ptr<Sequential> make_logistic(const ImageSpec& spec,
                                          std::size_t num_classes, util::Rng& rng) {
  auto model = std::make_unique<Sequential>();
  model->emplace<Flatten>();
  model->emplace<Dense>(spec.flat_features(), num_classes, rng);
  return model;
}

std::unique_ptr<Sequential> make_mlp(const ImageSpec& spec, std::size_t hidden,
                                     std::size_t num_classes, util::Rng& rng) {
  auto model = std::make_unique<Sequential>();
  model->emplace<Flatten>();
  model->emplace<Dense>(spec.flat_features(), hidden, rng);
  model->emplace<ReLU>();
  model->emplace<Dense>(hidden, num_classes, rng);
  return model;
}

std::unique_ptr<Sequential> make_small_cnn(const ImageSpec& spec,
                                           std::size_t num_classes, util::Rng& rng) {
  auto model = std::make_unique<Sequential>();
  model->emplace<Conv2D>(spec.channels, 8, /*kernel_size=*/3, /*stride=*/1,
                         /*padding=*/1, rng);
  model->emplace<ReLU>();
  model->emplace<MaxPool2D>(/*kernel_size=*/2, /*stride=*/2);
  model->emplace<Conv2D>(8, 16, /*kernel_size=*/3, /*stride=*/1, /*padding=*/1, rng);
  model->emplace<ReLU>();
  model->emplace<GlobalAvgPool2D>();
  model->emplace<Dense>(16, num_classes, rng);
  return model;
}

std::unique_ptr<Sequential> make_mini_squeezenet(const ImageSpec& spec,
                                                 std::size_t num_classes,
                                                 util::Rng& rng) {
  auto model = std::make_unique<Sequential>();
  model->emplace<Conv2D>(spec.channels, 8, /*kernel_size=*/3, /*stride=*/1,
                         /*padding=*/1, rng);
  model->emplace<ReLU>();
  model->emplace<Fire>(8, /*squeeze=*/4, /*expand1x1=*/8, /*expand3x3=*/8, rng);
  model->emplace<MaxPool2D>(/*kernel_size=*/2, /*stride=*/2);
  model->emplace<Fire>(16, /*squeeze=*/8, /*expand1x1=*/16, /*expand3x3=*/16, rng);
  // SqueezeNet head: 1x1 conv to class maps, then global average pooling.
  model->emplace<Conv2D>(32, num_classes, /*kernel_size=*/1, /*stride=*/1,
                         /*padding=*/0, rng);
  model->emplace<GlobalAvgPool2D>();
  return model;
}

std::unique_ptr<Sequential> make_model(ModelKind kind, const ImageSpec& spec,
                                       std::size_t num_classes, util::Rng& rng) {
  switch (kind) {
    case ModelKind::kLogistic: return make_logistic(spec, num_classes, rng);
    case ModelKind::kMlp: return make_mlp(spec, 64, num_classes, rng);
    case ModelKind::kSmallCnn: return make_small_cnn(spec, num_classes, rng);
    case ModelKind::kMiniSqueezeNet: return make_mini_squeezenet(spec, num_classes, rng);
  }
  throw std::invalid_argument("make_model: bad kind");
}

}  // namespace helcfl::nn
