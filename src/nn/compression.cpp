#include "nn/compression.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace helcfl::nn {

CompressedModel compress_identity(std::span<const float> weights) {
  CompressedModel out;
  out.reconstructed.assign(weights.begin(), weights.end());
  out.wire_bits = weights.size() * 32;
  return out;
}

CompressedModel compress_uniform_quantization(std::span<const float> weights,
                                              unsigned bits) {
  if (bits < 1 || bits > 16) {
    throw std::invalid_argument("compress_uniform_quantization: bits must be 1..16");
  }
  float max_abs = 0.0F;
  for (const float w : weights) max_abs = std::max(max_abs, std::abs(w));

  CompressedModel out;
  out.reconstructed.resize(weights.size());
  out.wire_bits = 32 + static_cast<std::size_t>(bits) * weights.size();
  if (max_abs == 0.0F) return out;  // all zeros reconstruct exactly

  // Symmetric signed grid with 2^(bits-1) - 1 positive levels (1-bit
  // degenerates to sign * scale).
  const auto levels = static_cast<float>((1u << (bits - 1)) - 1u);
  const float scale = levels > 0.0F ? max_abs / levels : max_abs;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (levels > 0.0F) {
      const float q = std::round(weights[i] / scale);
      out.reconstructed[i] = std::clamp(q, -levels, levels) * scale;
    } else {
      out.reconstructed[i] = weights[i] >= 0.0F ? scale : -scale;
    }
  }
  return out;
}

CompressedModel compress_topk_sparsification(std::span<const float> weights,
                                             double keep_ratio) {
  if (keep_ratio <= 0.0 || keep_ratio > 1.0) {
    throw std::invalid_argument(
        "compress_topk_sparsification: keep_ratio must be in (0, 1]");
  }
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(keep_ratio *
                                               static_cast<double>(weights.size()))));

  // Threshold = |value| of the keep-th largest magnitude.
  std::vector<float> magnitudes(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) magnitudes[i] = std::abs(weights[i]);
  std::vector<float> sorted = magnitudes;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                   sorted.end(), std::greater<float>());
  const float threshold = sorted[keep - 1];

  CompressedModel out;
  out.reconstructed.assign(weights.size(), 0.0F);
  std::size_t kept = 0;
  // Keep strictly-above first, then fill ties up to `keep` (deterministic
  // by index order).
  for (std::size_t i = 0; i < weights.size() && kept < keep; ++i) {
    if (magnitudes[i] > threshold) {
      out.reconstructed[i] = weights[i];
      ++kept;
    }
  }
  for (std::size_t i = 0; i < weights.size() && kept < keep; ++i) {
    if (magnitudes[i] == threshold && out.reconstructed[i] == 0.0F) {
      out.reconstructed[i] = weights[i];
      ++kept;
    }
  }
  out.wire_bits = kept * 64;  // value (32) + index (32) per survivor
  return out;
}

CompressionKind parse_compression_kind(const std::string& text) {
  if (text == "none") return CompressionKind::kNone;
  if (text == "quantization") return CompressionKind::kQuantization;
  if (text == "sparsification") return CompressionKind::kSparsification;
  throw std::invalid_argument("unknown compression kind: " + text);
}

std::string compression_kind_name(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kNone: return "none";
    case CompressionKind::kQuantization: return "quantization";
    case CompressionKind::kSparsification: return "sparsification";
  }
  return "unknown";
}

CompressedModel compress(std::span<const float> weights,
                         const CompressionOptions& options) {
  switch (options.kind) {
    case CompressionKind::kNone:
      return compress_identity(weights);
    case CompressionKind::kQuantization:
      return compress_uniform_quantization(weights, options.quantization_bits);
    case CompressionKind::kSparsification:
      return compress_topk_sparsification(weights, options.sparsify_keep_ratio);
  }
  throw std::invalid_argument("compress: bad kind");
}

}  // namespace helcfl::nn
