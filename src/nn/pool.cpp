#include "nn/pool.h"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace helcfl::nn {

using tensor::Shape;
using tensor::Tensor;

MaxPool2D::MaxPool2D(std::size_t kernel_size, std::size_t stride)
    : kernel_(kernel_size), stride_(stride) {
  if (kernel_size == 0 || stride == 0) {
    throw std::invalid_argument("MaxPool2D: kernel and stride must be positive");
  }
}

Tensor MaxPool2D::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  if (s.rank() != 4) {
    throw std::invalid_argument("MaxPool2D::forward: expected rank-4 input, got " +
                                s.to_string());
  }
  const std::size_t batch = s[0];
  const std::size_t channels = s[1];
  const std::size_t h_in = s[2];
  const std::size_t w_in = s[3];
  if (h_in < kernel_ || w_in < kernel_) {
    throw std::invalid_argument("MaxPool2D::forward: input " + s.to_string() +
                                " smaller than window " + std::to_string(kernel_));
  }
  const std::size_t h_out = (h_in - kernel_) / stride_ + 1;
  const std::size_t w_out = (w_in - kernel_) / stride_ + 1;

  Tensor output(Shape{batch, channels, h_out, w_out});
  if (training) {
    input_shape_ = s;
    argmax_.assign(output.size(), 0);
  }
  std::size_t out_i = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t oy = 0; oy < h_out; ++oy) {
        for (std::size_t ox = 0; ox < w_out; ++ox, ++out_i) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_index = 0;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              const std::size_t flat = ((n * channels + c) * h_in + iy) * w_in + ix;
              if (input[flat] > best) {
                best = input[flat];
                best_index = flat;
              }
            }
          }
          output[out_i] = best;
          if (training) argmax_[out_i] = best_index;
        }
      }
    }
  }
  return output;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  assert(grad_output.size() == argmax_.size());
  Tensor grad_input(input_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

std::string MaxPool2D::name() const {
  return "MaxPool2D(k=" + std::to_string(kernel_) + ", s=" + std::to_string(stride_) +
         ")";
}

Tensor GlobalAvgPool2D::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  if (s.rank() != 4) {
    throw std::invalid_argument("GlobalAvgPool2D::forward: expected rank-4, got " +
                                s.to_string());
  }
  if (training) input_shape_ = s;
  const std::size_t batch = s[0];
  const std::size_t channels = s[1];
  const std::size_t area = s[2] * s[3];
  Tensor output(Shape{batch, channels});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      double sum = 0.0;
      const std::size_t base = (n * channels + c) * area;
      for (std::size_t i = 0; i < area; ++i) sum += input[base + i];
      output.at(n, c) = static_cast<float>(sum / static_cast<double>(area));
    }
  }
  return output;
}

Tensor GlobalAvgPool2D::backward(const Tensor& grad_output) {
  const std::size_t batch = input_shape_[0];
  const std::size_t channels = input_shape_[1];
  const std::size_t area = input_shape_[2] * input_shape_[3];
  assert(grad_output.shape() == Shape({batch, channels}));
  Tensor grad_input(input_shape_);
  const float inv_area = 1.0F / static_cast<float>(area);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float g = grad_output.at(n, c) * inv_area;
      const std::size_t base = (n * channels + c) * area;
      for (std::size_t i = 0; i < area; ++i) grad_input[base + i] = g;
    }
  }
  return grad_input;
}

}  // namespace helcfl::nn
