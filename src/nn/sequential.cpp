#include "nn/sequential.h"

#include <stdexcept>

namespace helcfl::nn {

using tensor::Tensor;

Sequential::Sequential(const Sequential& other) : Layer() {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

void Sequential::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor activation = input;
  for (auto& layer : layers_) activation = layer->forward(activation, training);
  return activation;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return grad;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> all;
  for (auto& layer : layers_) {
    for (auto& p : layer->params()) all.push_back(p);
  }
  return all;
}

std::unique_ptr<Layer> Sequential::clone() const {
  return std::make_unique<Sequential>(*this);
}

std::vector<std::span<float>> Sequential::state_buffers() {
  std::vector<std::span<float>> all;
  for (auto& layer : layers_) {
    for (auto& s : layer->state_buffers()) all.push_back(s);
  }
  return all;
}

std::string Sequential::name() const {
  std::string out = "Sequential[";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) out += ", ";
    out += layers_[i]->name();
  }
  out += "]";
  return out;
}

std::size_t Sequential::parameter_count() {
  std::size_t total = 0;
  for (const auto& p : params()) total += p.value.size();
  return total;
}

}  // namespace helcfl::nn
