// Elementwise activation layers.
#pragma once

#include "nn/layer.h"

namespace helcfl::nn {

/// Rectified linear unit, y = max(0, x).
class ReLU : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<ReLU>(); }
  std::string name() const override { return "ReLU"; }

 private:
  tensor::Tensor mask_;  // 1 where input > 0
};

/// Leaky ReLU with configurable negative slope.
class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float negative_slope = 0.01F) : slope_(negative_slope) {}
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<LeakyReLU>(slope_);
  }
  std::string name() const override;

 private:
  float slope_;
  tensor::Tensor cached_input_;
};

/// Hyperbolic tangent.
class Tanh : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Tanh>(); }
  std::string name() const override { return "Tanh"; }

 private:
  tensor::Tensor cached_output_;
};

}  // namespace helcfl::nn
