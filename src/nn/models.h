// Model zoo: ready-made architectures used by the FL experiments.
//
// The paper trains SqueezeNet on CIFAR-10; our default experiment model is
// a scaled-down squeeze-style CNN (Fire modules) or an MLP, both operating
// on the synthetic CIFAR-10-like images of src/data.  See DESIGN.md for the
// substitution rationale.
#pragma once

#include <memory>
#include <string>

#include "nn/sequential.h"
#include "util/rng.h"

namespace helcfl::nn {

/// Input geometry of an image model.
struct ImageSpec {
  std::size_t channels = 3;
  std::size_t height = 8;
  std::size_t width = 8;

  std::size_t flat_features() const { return channels * height * width; }
};

enum class ModelKind {
  kLogistic,        ///< single linear layer (softmax regression)
  kMlp,             ///< 1 hidden layer, ReLU
  kSmallCnn,        ///< 2 conv + pool + dense
  kMiniSqueezeNet,  ///< conv + 2 Fire modules + global average pool
};

/// Parses "logistic" | "mlp" | "small_cnn" | "mini_squeezenet".
/// Throws std::invalid_argument for anything else.
ModelKind parse_model_kind(const std::string& text);

/// Human-readable name of a kind.
std::string model_kind_name(ModelKind kind);

/// Softmax regression on flattened input: Flatten + Dense.
std::unique_ptr<Sequential> make_logistic(const ImageSpec& spec,
                                          std::size_t num_classes, util::Rng& rng);

/// Flatten -> Dense(hidden) -> ReLU -> Dense(classes).
std::unique_ptr<Sequential> make_mlp(const ImageSpec& spec, std::size_t hidden,
                                     std::size_t num_classes, util::Rng& rng);

/// Conv(8,k3,p1) -> ReLU -> MaxPool(2) -> Conv(16,k3,p1) -> ReLU ->
/// GlobalAvgPool -> Dense(classes).
std::unique_ptr<Sequential> make_small_cnn(const ImageSpec& spec,
                                           std::size_t num_classes, util::Rng& rng);

/// Conv(8,k3,p1) -> ReLU -> Fire(4,8,8) -> MaxPool(2) -> Fire(8,16,16) ->
/// Conv1x1(classes) -> GlobalAvgPool: the SqueezeNet recipe shrunk to the
/// synthetic image sizes.
std::unique_ptr<Sequential> make_mini_squeezenet(const ImageSpec& spec,
                                                 std::size_t num_classes,
                                                 util::Rng& rng);

/// Dispatches on `kind` with sensible defaults (MLP hidden = 64).
std::unique_ptr<Sequential> make_model(ModelKind kind, const ImageSpec& spec,
                                       std::size_t num_classes, util::Rng& rng);

}  // namespace helcfl::nn
