#include "nn/dense.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "util/rng.h"

namespace helcfl::nn {

using tensor::Shape;
using tensor::Tensor;

Dense::Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Shape{out_features, in_features}),
      bias_(Shape{out_features}),
      grad_weight_(Shape{out_features, in_features}),
      grad_bias_(Shape{out_features}) {
  const float stddev = std::sqrt(2.0F / static_cast<float>(in_features));
  weight_.fill_normal(rng, 0.0F, stddev);
}

Dense::Dense(const Dense& other)
    : Layer(),
      in_features_(other.in_features_),
      out_features_(other.out_features_),
      weight_(other.weight_),
      bias_(other.bias_),
      grad_weight_(other.grad_weight_),
      grad_bias_(other.grad_bias_) {}

std::unique_ptr<Layer> Dense::clone() const { return std::make_unique<Dense>(*this); }

Tensor Dense::forward(const Tensor& input, bool training) {
  if (input.shape().rank() != 2 || input.shape()[1] != in_features_) {
    throw std::invalid_argument("Dense::forward: expected [batch, " +
                                std::to_string(in_features_) + "], got " +
                                input.shape().to_string());
  }
  const std::size_t batch = input.shape()[0];
  Tensor output(Shape{batch, out_features_});
  // output[b, o] = sum_i input[b, i] * weight[o, i] + bias[o]; the bias is
  // applied in the GEMM's store pass (no second sweep over the output).
  // Packed and unpacked paths produce identical bits (ops.h).
  if (tensor::weight_prepack_enabled()) {
    if (!packed_.is_b_trans(in_features_, out_features_)) {
      packed_.pack_b_trans(in_features_, out_features_, weight_.data());
    }
    tensor::gemm_a_bt_bias_cols(batch, in_features_, out_features_,
                                input.data(), packed_, bias_.data(),
                                output.data());
  } else {
    tensor::gemm_a_bt_bias_cols(batch, in_features_, out_features_,
                                input.data(), weight_.data(), bias_.data(),
                                output.data());
  }
  if (training) cached_input_ = input;
  return output;
}

Tensor Dense::backward(const Tensor& grad_output) {
  assert(!cached_input_.empty() && "backward() requires a training forward()");
  const std::size_t batch = cached_input_.shape()[0];
  assert(grad_output.shape() == Shape({batch, out_features_}));

  // grad_weight[o, i] += sum_b grad_output[b, o] * input[b, i], accumulated
  // straight into the parameter gradient (no temporary).
  tensor::gemm_at_b_accumulate(out_features_, batch, in_features_,
                               grad_output.data(), cached_input_.data(),
                               grad_weight_.data());

  const float* g = grad_output.data().data();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* g_row = g + b * out_features_;
    for (std::size_t o = 0; o < out_features_; ++o) grad_bias_[o] += g_row[o];
  }

  // grad_input[b, i] = sum_o grad_output[b, o] * weight[o, i]
  Tensor grad_input(Shape{batch, in_features_});
  tensor::gemm(batch, out_features_, in_features_, grad_output.data(), weight_.data(),
               grad_input.data());
  return grad_input;
}

std::vector<ParamRef> Dense::params() {
  return {{weight_.data(), grad_weight_.data(), this},
          {bias_.data(), grad_bias_.data(), this}};
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(in_features_) + "->" + std::to_string(out_features_) +
         ")";
}

}  // namespace helcfl::nn
