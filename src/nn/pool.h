// Spatial pooling layers over NCHW activations.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layer.h"

namespace helcfl::nn {

/// Max pooling with square window.  Output extent = (H - k) / stride + 1.
class MaxPool2D : public Layer {
 public:
  MaxPool2D(std::size_t kernel_size, std::size_t stride);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2D>(kernel_, stride_);
  }
  std::string name() const override;

 private:
  std::size_t kernel_;
  std::size_t stride_;
  tensor::Shape input_shape_;
  std::vector<std::size_t> argmax_;  // flat input index of each output's max
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool2D : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<GlobalAvgPool2D>();
  }
  std::string name() const override { return "GlobalAvgPool2D"; }

 private:
  tensor::Shape input_shape_;
};

}  // namespace helcfl::nn
