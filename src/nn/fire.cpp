#include "nn/fire.h"

#include <cassert>

#include "tensor/ops.h"
#include "util/rng.h"

namespace helcfl::nn {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// ReLU applied in place; returns a mask-free copy (Fire keeps the post-ReLU
/// activation itself, which is enough to gate gradients: x > 0 <=> relu(x) > 0).
void relu_inplace(Tensor& t) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] < 0.0F) t[i] = 0.0F;
  }
}

/// Gates `grad` by the positivity of `activation` (post-ReLU output).
Tensor relu_backward(const Tensor& grad, const Tensor& activation) {
  assert(grad.shape() == activation.shape());
  Tensor out = grad;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (activation[i] <= 0.0F) out[i] = 0.0F;
  }
  return out;
}

}  // namespace

Fire::Fire(std::size_t in_channels, std::size_t squeeze, std::size_t expand1x1,
           std::size_t expand3x3, util::Rng& rng)
    : expand1_channels_(expand1x1),
      expand3_channels_(expand3x3),
      squeeze_(in_channels, squeeze, /*kernel_size=*/1, /*stride=*/1, /*padding=*/0,
               rng),
      expand1_(squeeze, expand1x1, /*kernel_size=*/1, /*stride=*/1, /*padding=*/0, rng),
      expand3_(squeeze, expand3x3, /*kernel_size=*/3, /*stride=*/1, /*padding=*/1,
               rng) {}

Fire::Fire(const Fire& other)
    : Layer(),
      expand1_channels_(other.expand1_channels_),
      expand3_channels_(other.expand3_channels_),
      squeeze_(other.squeeze_),
      expand1_(other.expand1_),
      expand3_(other.expand3_) {}

std::unique_ptr<Layer> Fire::clone() const { return std::make_unique<Fire>(*this); }

Tensor Fire::forward(const Tensor& input, bool training) {
  Tensor s = squeeze_.forward(input, training);
  relu_inplace(s);
  if (training) squeeze_out_ = s;

  Tensor e1 = expand1_.forward(s, training);
  relu_inplace(e1);
  Tensor e3 = expand3_.forward(s, training);
  relu_inplace(e3);
  if (training) {
    expand1_out_ = e1;
    expand3_out_ = e3;
  }

  // Concatenate along channels: [N, e1 + e3, H, W].
  const std::size_t batch = e1.shape()[0];
  const std::size_t h = e1.shape()[2];
  const std::size_t w = e1.shape()[3];
  Tensor output(Shape{batch, expand1_channels_ + expand3_channels_, h, w});
  const std::size_t area = h * w;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < expand1_channels_; ++c) {
      const std::size_t src = (n * expand1_channels_ + c) * area;
      const std::size_t dst = (n * out_channels() + c) * area;
      for (std::size_t i = 0; i < area; ++i) output[dst + i] = e1[src + i];
    }
    for (std::size_t c = 0; c < expand3_channels_; ++c) {
      const std::size_t src = (n * expand3_channels_ + c) * area;
      const std::size_t dst = (n * out_channels() + expand1_channels_ + c) * area;
      for (std::size_t i = 0; i < area; ++i) output[dst + i] = e3[src + i];
    }
  }
  return output;
}

Tensor Fire::backward(const Tensor& grad_output) {
  const std::size_t batch = grad_output.shape()[0];
  const std::size_t h = grad_output.shape()[2];
  const std::size_t w = grad_output.shape()[3];
  const std::size_t area = h * w;
  assert(grad_output.shape()[1] == out_channels());

  // Split the concatenated gradient back into the two expand branches.
  Tensor g1(Shape{batch, expand1_channels_, h, w});
  Tensor g3(Shape{batch, expand3_channels_, h, w});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < expand1_channels_; ++c) {
      const std::size_t dst = (n * expand1_channels_ + c) * area;
      const std::size_t src = (n * out_channels() + c) * area;
      for (std::size_t i = 0; i < area; ++i) g1[dst + i] = grad_output[src + i];
    }
    for (std::size_t c = 0; c < expand3_channels_; ++c) {
      const std::size_t dst = (n * expand3_channels_ + c) * area;
      const std::size_t src = (n * out_channels() + expand1_channels_ + c) * area;
      for (std::size_t i = 0; i < area; ++i) g3[dst + i] = grad_output[src + i];
    }
  }

  Tensor gs1 = expand1_.backward(relu_backward(g1, expand1_out_));
  Tensor gs3 = expand3_.backward(relu_backward(g3, expand3_out_));
  tensor::add_inplace(gs1.data(), gs3.data());
  return squeeze_.backward(relu_backward(gs1, squeeze_out_));
}

std::vector<ParamRef> Fire::params() {
  std::vector<ParamRef> all;
  for (auto& p : squeeze_.params()) all.push_back(p);
  for (auto& p : expand1_.params()) all.push_back(p);
  for (auto& p : expand3_.params()) all.push_back(p);
  return all;
}

std::string Fire::name() const {
  return "Fire(s=" + std::to_string(squeeze_.out_channels()) +
         ", e1=" + std::to_string(expand1_channels_) +
         ", e3=" + std::to_string(expand3_channels_) + ")";
}

}  // namespace helcfl::nn
