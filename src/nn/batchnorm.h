// Batch normalization (Ioffe & Szegedy, 2015).
//
// Normalizes per feature (rank-2 input [N, F]) or per channel (rank-4
// input [N, C, H, W]) using batch statistics during training and running
// averages at inference.  Learnable affine parameters gamma/beta.
//
// Note for FL use: gamma/beta travel through the usual params()/FedAvg
// path; the running statistics are local buffers (a known subtlety of
// FedAvg-with-BatchNorm) and are *not* aggregated.
#pragma once

#include <cstddef>

#include "nn/layer.h"

namespace helcfl::nn {

class BatchNorm : public Layer {
 public:
  /// `num_features` is F for rank-2 inputs and C for rank-4 inputs.
  explicit BatchNorm(std::size_t num_features, float momentum = 0.1F,
                     float epsilon = 1e-5F);
  BatchNorm(const BatchNorm& other);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  /// Running mean/var: persistent state updated by training forwards.
  std::vector<std::span<float>> state_buffers() override;
  std::string name() const override;

  std::size_t num_features() const { return features_; }
  std::span<const float> running_mean() const { return running_mean_.data(); }
  std::span<const float> running_var() const { return running_var_.data(); }

 private:
  /// Per-feature group geometry of the last forward: how many samples were
  /// reduced per feature and how to map a flat index to its feature.
  std::size_t feature_of(const tensor::Shape& shape, std::size_t flat) const;

  std::size_t features_;
  float momentum_;
  float epsilon_;
  tensor::Tensor gamma_;         // [F]
  tensor::Tensor beta_;          // [F]
  tensor::Tensor grad_gamma_;
  tensor::Tensor grad_beta_;
  tensor::Tensor running_mean_;  // [F], inference statistics
  tensor::Tensor running_var_;   // [F]
  // Training-forward cache for backward().
  tensor::Tensor x_hat_;         // normalized input
  std::vector<float> batch_inv_std_;  // [F]
  std::size_t group_size_ = 0;   // N (rank 2) or N*H*W (rank 4)
};

}  // namespace helcfl::nn
