// Sequential container: a model is an ordered list of layers.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace helcfl::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Deep copy: clones every layer.  The parallel trainer copy-constructs
  /// one replica per worker thread from the global model.
  Sequential(const Sequential& other);

  /// Appends a layer (takes ownership).
  void add(std::unique_ptr<Layer> layer);

  /// Constructs and appends a layer in place.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  std::vector<std::span<float>> state_buffers() override;
  void mark_weights_dirty() override {
    for (auto& layer : layers_) layer->mark_weights_dirty();
  }
  std::string name() const override;

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  /// Total number of trainable scalars.
  std::size_t parameter_count();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace helcfl::nn
