#include "nn/conv2d.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "tensor/gemm_kernel.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace helcfl::nn {

using tensor::Shape;
using tensor::Tensor;

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, std::size_t stride, std::size_t padding,
               util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel_size),
      stride_(stride),
      padding_(padding),
      weight_(Shape{out_channels, in_channels, kernel_size, kernel_size}),
      bias_(Shape{out_channels}),
      grad_weight_(Shape{out_channels, in_channels, kernel_size, kernel_size}),
      grad_bias_(Shape{out_channels}) {
  if (stride == 0) throw std::invalid_argument("Conv2D: stride must be positive");
  const auto fan_in = static_cast<float>(in_channels * kernel_size * kernel_size);
  weight_.fill_normal(rng, 0.0F, std::sqrt(2.0F / fan_in));
}

Conv2D::Conv2D(const Conv2D& other)
    : Layer(),
      in_channels_(other.in_channels_),
      out_channels_(other.out_channels_),
      kernel_(other.kernel_),
      stride_(other.stride_),
      padding_(other.padding_),
      weight_(other.weight_),
      bias_(other.bias_),
      grad_weight_(other.grad_weight_),
      grad_bias_(other.grad_bias_) {}
// Scratch and the cached forward input intentionally stay empty in copies:
// clones (one per client replica) grow their own on first use.

std::unique_ptr<Layer> Conv2D::clone() const {
  return std::make_unique<Conv2D>(*this);
}

std::size_t Conv2D::output_extent(std::size_t input_extent) const {
  const std::size_t padded = input_extent + 2 * padding_;
  if (padded < kernel_) {
    throw std::invalid_argument("Conv2D: input extent " + std::to_string(input_extent) +
                                " too small for kernel " + std::to_string(kernel_));
  }
  return (padded - kernel_) / stride_ + 1;
}

namespace {

/// Output positions o with 0 <= o*stride + kt - pad < extent, as [lo, hi).
struct TapRange {
  std::size_t lo;
  std::size_t hi;
};

TapRange valid_taps(std::size_t out_extent, std::size_t stride, std::size_t kt,
                    std::size_t pad, std::size_t extent) {
  std::size_t lo = 0;
  if (kt < pad) lo = (pad - kt + stride - 1) / stride;
  std::size_t hi = 0;
  if (extent + pad > kt) {
    hi = std::min(out_extent, (extent + pad - kt - 1) / stride + 1);
  }
  if (hi < lo) hi = lo;
  return {lo, hi};
}

}  // namespace

void Conv2D::im2col(const float* __restrict__ src, std::size_t h_in,
                    std::size_t w_in, std::size_t h_out, std::size_t w_out,
                    float* __restrict__ dst) const {
  const std::size_t hw = h_out * w_out;
  std::size_t r = 0;
  for (std::size_t ic = 0; ic < in_channels_; ++ic) {
    const float* plane = src + ic * h_in * w_in;
    for (std::size_t ky = 0; ky < kernel_; ++ky) {
      const TapRange oy = valid_taps(h_out, stride_, ky, padding_, h_in);
      for (std::size_t kx = 0; kx < kernel_; ++kx, ++r) {
        const TapRange ox = valid_taps(w_out, stride_, kx, padding_, w_in);
        float* row = dst + r * hw;
        for (std::size_t y = 0; y < h_out; ++y) {
          float* out = row + y * w_out;
          if (y < oy.lo || y >= oy.hi) {
            std::fill(out, out + w_out, 0.0F);
            continue;
          }
          const float* in_row = plane + (y * stride_ + ky - padding_) * w_in;
          std::fill(out, out + ox.lo, 0.0F);
          if (stride_ == 1) {
            const float* s = in_row + (ox.lo + kx - padding_);
            std::copy(s, s + (ox.hi - ox.lo), out + ox.lo);
          } else {
            for (std::size_t x = ox.lo; x < ox.hi; ++x) {
              out[x] = in_row[x * stride_ + kx - padding_];
            }
          }
          std::fill(out + ox.hi, out + w_out, 0.0F);
        }
      }
    }
  }
}

void Conv2D::col2im(const float* __restrict__ src, std::size_t h_in,
                    std::size_t w_in, std::size_t h_out, std::size_t w_out,
                    float* __restrict__ dst) const {
  const std::size_t hw = h_out * w_out;
  std::size_t r = 0;
  for (std::size_t ic = 0; ic < in_channels_; ++ic) {
    float* plane = dst + ic * h_in * w_in;
    for (std::size_t ky = 0; ky < kernel_; ++ky) {
      const TapRange oy = valid_taps(h_out, stride_, ky, padding_, h_in);
      for (std::size_t kx = 0; kx < kernel_; ++kx, ++r) {
        const TapRange ox = valid_taps(w_out, stride_, kx, padding_, w_in);
        const float* row = src + r * hw;
        for (std::size_t y = oy.lo; y < oy.hi; ++y) {
          const float* in = row + y * w_out;
          float* out_row = plane + (y * stride_ + ky - padding_) * w_in;
          if (stride_ == 1) {
            float* d = out_row + (ox.lo + kx - padding_);
            for (std::size_t x = ox.lo; x < ox.hi; ++x) d[x - ox.lo] += in[x];
          } else {
            for (std::size_t x = ox.lo; x < ox.hi; ++x) {
              out_row[x * stride_ + kx - padding_] += in[x];
            }
          }
        }
      }
    }
  }
}

Tensor Conv2D::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  if (s.rank() != 4 || s[1] != in_channels_) {
    throw std::invalid_argument("Conv2D::forward: expected [N, " +
                                std::to_string(in_channels_) + ", H, W], got " +
                                s.to_string());
  }
  const std::size_t batch = s[0];
  const std::size_t h_in = s[2];
  const std::size_t w_in = s[3];
  const std::size_t h_out = output_extent(h_in);
  const std::size_t w_out = output_extent(w_in);
  const std::size_t ckk = in_channels_ * kernel_ * kernel_;
  const std::size_t hw = h_out * w_out;

  Tensor output(Shape{batch, out_channels_, h_out, w_out});
  tensor::detail::ensure_scratch(col_, ckk * hw);
  const float* in = input.data().data();
  float* out = output.data().data();
  // The weight acts as the [out_ch, ckk] left operand of every sample's
  // GEMM; pack its panels once per weight mutation instead of per sample.
  // Packed and unpacked paths produce identical bits (ops.h).
  const bool prepack = tensor::weight_prepack_enabled();
  if (prepack && !packed_.is_a(out_channels_, ckk)) {
    packed_.pack_a(out_channels_, ckk, weight_.data());
  }
  // Per sample: out[n] = W[out_ch, ckk] * col[ckk, hw] + bias (fused).
  for (std::size_t n = 0; n < batch; ++n) {
    im2col(in + n * in_channels_ * h_in * w_in, h_in, w_in, h_out, w_out,
           col_.data());
    const std::span<const float> col_n(col_.data(), ckk * hw);
    const std::span<float> out_n(out + n * out_channels_ * hw,
                                 out_channels_ * hw);
    if (prepack) {
      tensor::gemm_bias_rows(out_channels_, ckk, hw, packed_, col_n,
                             bias_.data(), out_n);
    } else {
      tensor::gemm_bias_rows(out_channels_, ckk, hw, weight_.data(), col_n,
                             bias_.data(), out_n);
    }
  }
  if (training) cached_input_ = input;
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  assert(!cached_input_.empty() && "backward() requires a training forward()");
  const Shape& s = cached_input_.shape();
  const std::size_t batch = s[0];
  const std::size_t h_in = s[2];
  const std::size_t w_in = s[3];
  const std::size_t h_out = grad_output.shape()[2];
  const std::size_t w_out = grad_output.shape()[3];
  assert(grad_output.shape() == Shape({batch, out_channels_, h_out, w_out}));
  const std::size_t ckk = in_channels_ * kernel_ * kernel_;
  const std::size_t hw = h_out * w_out;

  tensor::detail::ensure_scratch(col_, ckk * hw);
  tensor::detail::ensure_scratch(col_grad_, ckk * hw);

  Tensor grad_input(s);
  const float* in = cached_input_.data().data();
  const float* gout = grad_output.data().data();
  float* gin = grad_input.data().data();
  for (std::size_t n = 0; n < batch; ++n) {
    const std::size_t plane = n * out_channels_ * hw;
    const std::span<const float> gout_n(gout + plane, out_channels_ * hw);
    // Recompute the forward's columns (the scratch was reused across
    // samples, so nothing survives from forward()).
    im2col(in + n * in_channels_ * h_in * w_in, h_in, w_in, h_out, w_out,
           col_.data());
    // grad_W[oc, ckk] += gout[oc, hw] * col^T[hw, ckk]
    tensor::gemm_a_bt_accumulate(out_channels_, hw, ckk, gout_n,
                                 std::span<const float>(col_.data(), ckk * hw),
                                 grad_weight_.data());
    // grad_b[oc] += sum over spatial positions
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float* g_row = gout + plane + oc * hw;
      float sum = 0.0F;
      for (std::size_t i = 0; i < hw; ++i) sum += g_row[i];
      grad_bias_[oc] += sum;
    }
    // grad_col[ckk, hw] = W^T[ckk, oc] * gout[oc, hw], then fold back.
    tensor::gemm_at_b(ckk, out_channels_, hw, weight_.data(), gout_n,
                      std::span<float>(col_grad_.data(), ckk * hw));
    col2im(col_grad_.data(), h_in, w_in, h_out, w_out,
           gin + n * in_channels_ * h_in * w_in);
  }
  return grad_input;
}

std::vector<ParamRef> Conv2D::params() {
  return {{weight_.data(), grad_weight_.data(), this},
          {bias_.data(), grad_bias_.data(), this}};
}

std::string Conv2D::name() const {
  return "Conv2D(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ", k=" + std::to_string(kernel_) +
         ", s=" + std::to_string(stride_) + ", p=" + std::to_string(padding_) + ")";
}

}  // namespace helcfl::nn
