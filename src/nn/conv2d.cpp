#include "nn/conv2d.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace helcfl::nn {

using tensor::Shape;
using tensor::Tensor;

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, std::size_t stride, std::size_t padding,
               util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel_size),
      stride_(stride),
      padding_(padding),
      weight_(Shape{out_channels, in_channels, kernel_size, kernel_size}),
      bias_(Shape{out_channels}),
      grad_weight_(Shape{out_channels, in_channels, kernel_size, kernel_size}),
      grad_bias_(Shape{out_channels}) {
  if (stride == 0) throw std::invalid_argument("Conv2D: stride must be positive");
  const auto fan_in = static_cast<float>(in_channels * kernel_size * kernel_size);
  weight_.fill_normal(rng, 0.0F, std::sqrt(2.0F / fan_in));
}

Conv2D::Conv2D(const Conv2D& other)
    : Layer(),
      in_channels_(other.in_channels_),
      out_channels_(other.out_channels_),
      kernel_(other.kernel_),
      stride_(other.stride_),
      padding_(other.padding_),
      weight_(other.weight_),
      bias_(other.bias_),
      grad_weight_(other.grad_weight_),
      grad_bias_(other.grad_bias_) {}

std::unique_ptr<Layer> Conv2D::clone() const {
  return std::make_unique<Conv2D>(*this);
}

std::size_t Conv2D::output_extent(std::size_t input_extent) const {
  const std::size_t padded = input_extent + 2 * padding_;
  if (padded < kernel_) {
    throw std::invalid_argument("Conv2D: input extent " + std::to_string(input_extent) +
                                " too small for kernel " + std::to_string(kernel_));
  }
  return (padded - kernel_) / stride_ + 1;
}

Tensor Conv2D::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  if (s.rank() != 4 || s[1] != in_channels_) {
    throw std::invalid_argument("Conv2D::forward: expected [N, " +
                                std::to_string(in_channels_) + ", H, W], got " +
                                s.to_string());
  }
  const std::size_t batch = s[0];
  const std::size_t h_in = s[2];
  const std::size_t w_in = s[3];
  const std::size_t h_out = output_extent(h_in);
  const std::size_t w_out = output_extent(w_in);

  Tensor output(Shape{batch, out_channels_, h_out, w_out});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      for (std::size_t oy = 0; oy < h_out; ++oy) {
        for (std::size_t ox = 0; ox < w_out; ++ox) {
          float acc = bias_[oc];
          for (std::size_t ic = 0; ic < in_channels_; ++ic) {
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::size_t iy_p = oy * stride_ + ky;
              if (iy_p < padding_ || iy_p >= h_in + padding_) continue;
              const std::size_t iy = iy_p - padding_;
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::size_t ix_p = ox * stride_ + kx;
                if (ix_p < padding_ || ix_p >= w_in + padding_) continue;
                const std::size_t ix = ix_p - padding_;
                acc += input.at(n, ic, iy, ix) * weight_.at(oc, ic, ky, kx);
              }
            }
          }
          output.at(n, oc, oy, ox) = acc;
        }
      }
    }
  }
  if (training) cached_input_ = input;
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  assert(!cached_input_.empty() && "backward() requires a training forward()");
  const Shape& s = cached_input_.shape();
  const std::size_t batch = s[0];
  const std::size_t h_in = s[2];
  const std::size_t w_in = s[3];
  const std::size_t h_out = grad_output.shape()[2];
  const std::size_t w_out = grad_output.shape()[3];
  assert(grad_output.shape() == Shape({batch, out_channels_, h_out, w_out}));

  Tensor grad_input(s);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      for (std::size_t oy = 0; oy < h_out; ++oy) {
        for (std::size_t ox = 0; ox < w_out; ++ox) {
          const float g = grad_output.at(n, oc, oy, ox);
          if (g == 0.0F) continue;
          grad_bias_[oc] += g;
          for (std::size_t ic = 0; ic < in_channels_; ++ic) {
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::size_t iy_p = oy * stride_ + ky;
              if (iy_p < padding_ || iy_p >= h_in + padding_) continue;
              const std::size_t iy = iy_p - padding_;
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::size_t ix_p = ox * stride_ + kx;
                if (ix_p < padding_ || ix_p >= w_in + padding_) continue;
                const std::size_t ix = ix_p - padding_;
                grad_weight_.at(oc, ic, ky, kx) += g * cached_input_.at(n, ic, iy, ix);
                grad_input.at(n, ic, iy, ix) += g * weight_.at(oc, ic, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> Conv2D::params() {
  return {{weight_.data(), grad_weight_.data()}, {bias_.data(), grad_bias_.data()}};
}

std::string Conv2D::name() const {
  return "Conv2D(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ", k=" + std::to_string(kernel_) +
         ", s=" + std::to_string(stride_) + ", p=" + std::to_string(padding_) + ")";
}

}  // namespace helcfl::nn
