// Model-upload compression (extension; see DESIGN.md §6).
//
// The paper's introduction contrasts user selection against the other
// family of communication-cost reducers — sparsification [5] and
// quantization [6] — noting they "inevitably sacrifice model accuracy or
// introduce additional compression costs".  This module implements both so
// the claim can be measured: compressing a client upload shrinks C_model
// in Eq. (7) (shorter T^com, less E^com) at the price of lossy weights
// entering the FedAvg average.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace helcfl::nn {

/// A compressed parameter vector plus its exact wire size.
struct CompressedModel {
  std::vector<float> reconstructed;  ///< what the server decodes
  std::size_t wire_bits = 0;         ///< serialized size, drives Eq. (7)
};

/// Lossless reference: float32 end to end.
CompressedModel compress_identity(std::span<const float> weights);

/// Uniform symmetric quantization to `bits` bits per weight (1..16).
/// The scale (one float32) is carried per tensor-vector; reconstruction is
/// scale * q with q the signed integer code.  wire_bits =
/// 32 + bits * n.
CompressedModel compress_uniform_quantization(std::span<const float> weights,
                                              unsigned bits);

/// Magnitude top-k sparsification: keeps the `keep_ratio` fraction of
/// largest-magnitude weights, zeroing the rest.  Each survivor costs its
/// float32 value plus a 32-bit index; wire_bits = kept * 64.
CompressedModel compress_topk_sparsification(std::span<const float> weights,
                                             double keep_ratio);

/// Compression back-ends selectable from an experiment config.
enum class CompressionKind {
  kNone,          ///< float32 uploads (the paper's setting)
  kQuantization,  ///< uniform quantization
  kSparsification ///< magnitude top-k
};

CompressionKind parse_compression_kind(const std::string& text);
std::string compression_kind_name(CompressionKind kind);

/// Config + dispatch wrapper.
struct CompressionOptions {
  CompressionKind kind = CompressionKind::kNone;
  unsigned quantization_bits = 8;   ///< used by kQuantization
  double sparsify_keep_ratio = 0.1; ///< used by kSparsification
};

/// Applies the configured compressor.  Throws std::invalid_argument for
/// out-of-range parameters.
CompressedModel compress(std::span<const float> weights,
                         const CompressionOptions& options);

}  // namespace helcfl::nn
