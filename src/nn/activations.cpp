#include "nn/activations.h"

#include <cassert>
#include <cmath>

namespace helcfl::nn {

using tensor::Tensor;

Tensor ReLU::forward(const Tensor& input, bool training) {
  Tensor output = input;
  if (training) mask_ = Tensor(input.shape());
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (output[i] > 0.0F) {
      if (training) mask_[i] = 1.0F;
    } else {
      output[i] = 0.0F;
    }
  }
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  assert(grad_output.shape() == mask_.shape());
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) grad_input[i] *= mask_[i];
  return grad_input;
}

Tensor LeakyReLU::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  Tensor output = input;
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (output[i] < 0.0F) output[i] *= slope_;
  }
  return output;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  assert(grad_output.shape() == cached_input_.shape());
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) {
    if (cached_input_[i] < 0.0F) grad_input[i] *= slope_;
  }
  return grad_input;
}

std::string LeakyReLU::name() const {
  return "LeakyReLU(" + std::to_string(slope_) + ")";
}

Tensor Tanh::forward(const Tensor& input, bool training) {
  Tensor output = input;
  for (std::size_t i = 0; i < output.size(); ++i) output[i] = std::tanh(output[i]);
  if (training) cached_output_ = output;
  return output;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  assert(grad_output.shape() == cached_output_.shape());
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) {
    grad_input[i] *= 1.0F - cached_output_[i] * cached_output_[i];
  }
  return grad_input;
}

}  // namespace helcfl::nn
