// Layer abstraction for the from-scratch neural-network library.
//
// Training protocol (single-threaded, as used by the FL client):
//   1. zero_grad()
//   2. y = forward(x, /*training=*/true)   -- caches whatever backward needs
//   3. dx = backward(dy)                   -- accumulates parameter gradients
//   4. optimizer steps over params()
//
// forward(x, /*training=*/false) must not perturb results (e.g. dropout
// becomes identity) and may skip caching.
#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace helcfl::nn {

class Layer;

/// Non-owning view of one parameter tensor and its gradient accumulator.
/// Both spans alias storage owned by the layer and remain valid while the
/// layer is alive and not moved.  `owner`, when set, points at the layer
/// whose cached derived state (prepacked weight panels) must be
/// invalidated after writing `value` — the optimizers call
/// owner->mark_weights_dirty() after every step, so a step-then-forward
/// sequence never reads stale panels even without an intervening
/// zero_grad.  Layers with no derived state may leave it null.
struct ParamRef {
  std::span<float> value;
  std::span<float> grad;
  Layer* owner = nullptr;
};

/// Base class for all layers.
class Layer {
 public:
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;
  virtual ~Layer() = default;

  /// Computes the layer output.  When `training` is true the layer caches
  /// the activations needed by backward().
  virtual tensor::Tensor forward(const tensor::Tensor& input, bool training) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput.  Must be called after a training-mode forward().
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Deep copy of this layer, including parameters and persistent
  /// (non-trainable) state.  The parallel trainer clones one model replica
  /// per worker thread so concurrent clients never share layer storage.
  /// Layers that cannot be replicated may keep the throwing default, but
  /// every layer shipped in src/nn overrides it.
  virtual std::unique_ptr<Layer> clone() const {
    throw std::logic_error(name() + ": clone() not supported");
  }

  /// Mutable views of persistent non-trainable state that training-mode
  /// forward passes update (e.g. BatchNorm running statistics).  Unlike
  /// params(), these buffers do not travel through FedAvg; the parallel
  /// trainer snapshots and restores them per client so results are
  /// independent of the worker a client lands on.  Empty by default.
  virtual std::vector<std::span<float>> state_buffers() { return {}; }

  /// Invalidates any cached derived form of this layer's parameters — the
  /// prepacked GEMM weight panels of Dense/Conv2D (tensor::PackedWeights).
  /// Contract: every code path that writes parameter storage must reach
  /// this before the next forward().  The standard mutation paths do so
  /// automatically: nn::load_parameters() calls it, the optimizers call it
  /// through ParamRef::owner after every step, and zero_grad() calls it as
  /// a belt-and-braces sweep at the top of each training iteration.  Code
  /// that pokes params() spans directly — e.g. a finite-difference
  /// gradcheck — must call it explicitly.  Containers broadcast to their
  /// children; leaf layers without derived state keep the no-op default.
  virtual void mark_weights_dirty() {}

  /// Clears all gradient accumulators (and, per the contract above,
  /// invalidates cached weight panels — by this point in the training
  /// protocol the optimizer may have stepped the parameters).
  void zero_grad() {
    mark_weights_dirty();
    for (auto& p : params()) {
      for (auto& g : p.grad) g = 0.0F;
    }
  }

  /// Diagnostic name, e.g. "Dense(192->64)".
  virtual std::string name() const = 0;
};

}  // namespace helcfl::nn
