// Layer abstraction for the from-scratch neural-network library.
//
// Training protocol (single-threaded, as used by the FL client):
//   1. zero_grad()
//   2. y = forward(x, /*training=*/true)   -- caches whatever backward needs
//   3. dx = backward(dy)                   -- accumulates parameter gradients
//   4. optimizer steps over params()
//
// forward(x, /*training=*/false) must not perturb results (e.g. dropout
// becomes identity) and may skip caching.
#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace helcfl::nn {

/// Non-owning view of one parameter tensor and its gradient accumulator.
/// Both spans alias storage owned by the layer and remain valid while the
/// layer is alive and not moved.
struct ParamRef {
  std::span<float> value;
  std::span<float> grad;
};

/// Base class for all layers.
class Layer {
 public:
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;
  virtual ~Layer() = default;

  /// Computes the layer output.  When `training` is true the layer caches
  /// the activations needed by backward().
  virtual tensor::Tensor forward(const tensor::Tensor& input, bool training) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput.  Must be called after a training-mode forward().
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Deep copy of this layer, including parameters and persistent
  /// (non-trainable) state.  The parallel trainer clones one model replica
  /// per worker thread so concurrent clients never share layer storage.
  /// Layers that cannot be replicated may keep the throwing default, but
  /// every layer shipped in src/nn overrides it.
  virtual std::unique_ptr<Layer> clone() const {
    throw std::logic_error(name() + ": clone() not supported");
  }

  /// Mutable views of persistent non-trainable state that training-mode
  /// forward passes update (e.g. BatchNorm running statistics).  Unlike
  /// params(), these buffers do not travel through FedAvg; the parallel
  /// trainer snapshots and restores them per client so results are
  /// independent of the worker a client lands on.  Empty by default.
  virtual std::vector<std::span<float>> state_buffers() { return {}; }

  /// Clears all gradient accumulators.
  void zero_grad() {
    for (auto& p : params()) {
      for (auto& g : p.grad) g = 0.0F;
    }
  }

  /// Diagnostic name, e.g. "Dense(192->64)".
  virtual std::string name() const = 0;
};

}  // namespace helcfl::nn
