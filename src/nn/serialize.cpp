#include "nn/serialize.h"

#include <stdexcept>

namespace helcfl::nn {

std::size_t parameter_count(Layer& model) {
  std::size_t total = 0;
  for (const auto& p : model.params()) total += p.value.size();
  return total;
}

std::vector<float> extract_parameters(Layer& model) {
  std::vector<float> flat;
  flat.reserve(parameter_count(model));
  for (const auto& p : model.params()) {
    flat.insert(flat.end(), p.value.begin(), p.value.end());
  }
  return flat;
}

void load_parameters(Layer& model, std::span<const float> flat) {
  const std::size_t expected = parameter_count(model);
  if (flat.size() != expected) {
    throw std::invalid_argument("load_parameters: expected " +
                                std::to_string(expected) + " values, got " +
                                std::to_string(flat.size()));
  }
  std::size_t offset = 0;
  for (const auto& p : model.params()) {
    for (std::size_t i = 0; i < p.value.size(); ++i) p.value[i] = flat[offset + i];
    offset += p.value.size();
  }
  // New weights invalidate any prepacked panels (nn/layer.h contract).
  model.mark_weights_dirty();
}

std::vector<float> extract_gradients(Layer& model) {
  std::vector<float> flat;
  flat.reserve(parameter_count(model));
  for (const auto& p : model.params()) {
    flat.insert(flat.end(), p.grad.begin(), p.grad.end());
  }
  return flat;
}

std::size_t model_size_bits(Layer& model) { return parameter_count(model) * 32; }

std::size_t state_count(Layer& model) {
  std::size_t total = 0;
  for (const auto& s : model.state_buffers()) total += s.size();
  return total;
}

std::vector<float> extract_state(Layer& model) {
  std::vector<float> flat;
  flat.reserve(state_count(model));
  for (const auto& s : model.state_buffers()) {
    flat.insert(flat.end(), s.begin(), s.end());
  }
  return flat;
}

void load_state(Layer& model, std::span<const float> flat) {
  const std::size_t expected = state_count(model);
  if (flat.size() != expected) {
    throw std::invalid_argument("load_state: expected " + std::to_string(expected) +
                                " values, got " + std::to_string(flat.size()));
  }
  std::size_t offset = 0;
  for (const auto& s : model.state_buffers()) {
    for (std::size_t i = 0; i < s.size(); ++i) s[i] = flat[offset + i];
    offset += s.size();
  }
}

}  // namespace helcfl::nn
