// Softmax cross-entropy loss over class logits.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.h"

namespace helcfl::nn {

/// Result of a softmax cross-entropy evaluation on a batch.
struct LossResult {
  double loss = 0.0;              ///< mean negative log-likelihood over the batch
  tensor::Tensor grad_logits;     ///< dLoss/dLogits, shape [batch, classes]
  tensor::Tensor probabilities;   ///< softmax outputs, shape [batch, classes]
  std::size_t correct = 0;        ///< argmax matches label
};

/// Computes mean cross-entropy of softmax(logits) against integer labels.
/// `logits` is [batch, classes]; labels.size() must equal batch and every
/// label must be in [0, classes).  Numerically stabilized via max-shift.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::int32_t> labels);

/// Count of argmax(logits) == label, without computing gradients.
std::size_t count_correct(const tensor::Tensor& logits,
                          std::span<const std::int32_t> labels);

}  // namespace helcfl::nn
