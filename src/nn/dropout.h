// Inverted dropout: zeroes activations with probability p during training
// and rescales survivors by 1/(1-p); identity at inference.
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace helcfl::nn {

class Dropout : public Layer {
 public:
  /// `p` is the drop probability in [0, 1).  The layer forks its own RNG
  /// stream from `rng` so dropout masks are reproducible.
  Dropout(float p, util::Rng& rng);
  Dropout(const Dropout& other);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  /// Clones duplicate the current RNG stream; replicas trained on
  /// different inputs draw different mask sequences, so models containing
  /// Dropout are not bitwise-reproducible across thread counts (DESIGN.md
  /// §7).  None of the model-zoo architectures use Dropout.
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override;

 private:
  float p_;
  util::Rng rng_;
  tensor::Tensor mask_;  // 0 or 1/(1-p)
};

}  // namespace helcfl::nn
