#include "nn/batchnorm.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace helcfl::nn {

using tensor::Shape;
using tensor::Tensor;

BatchNorm::BatchNorm(std::size_t num_features, float momentum, float epsilon)
    : features_(num_features),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(Shape{num_features}),
      beta_(Shape{num_features}),
      grad_gamma_(Shape{num_features}),
      grad_beta_(Shape{num_features}),
      running_mean_(Shape{num_features}),
      running_var_(Shape{num_features}) {
  if (num_features == 0) throw std::invalid_argument("BatchNorm: zero features");
  if (momentum < 0.0F || momentum > 1.0F) {
    throw std::invalid_argument("BatchNorm: momentum must be in [0, 1]");
  }
  if (epsilon <= 0.0F) throw std::invalid_argument("BatchNorm: epsilon must be > 0");
  gamma_.fill(1.0F);
  running_var_.fill(1.0F);
}

BatchNorm::BatchNorm(const BatchNorm& other)
    : Layer(),
      features_(other.features_),
      momentum_(other.momentum_),
      epsilon_(other.epsilon_),
      gamma_(other.gamma_),
      beta_(other.beta_),
      grad_gamma_(other.grad_gamma_),
      grad_beta_(other.grad_beta_),
      running_mean_(other.running_mean_),
      running_var_(other.running_var_) {}

std::unique_ptr<Layer> BatchNorm::clone() const {
  return std::make_unique<BatchNorm>(*this);
}

std::vector<std::span<float>> BatchNorm::state_buffers() {
  return {running_mean_.data(), running_var_.data()};
}

std::size_t BatchNorm::feature_of(const Shape& shape, std::size_t flat) const {
  if (shape.rank() == 2) return flat % features_;
  // rank 4, NCHW: feature = channel.
  const std::size_t area = shape[2] * shape[3];
  return (flat / area) % features_;
}

Tensor BatchNorm::forward(const Tensor& input, bool training) {
  const Shape& shape = input.shape();
  if (!((shape.rank() == 2 && shape[1] == features_) ||
        (shape.rank() == 4 && shape[1] == features_))) {
    throw std::invalid_argument("BatchNorm::forward: expected [N, " +
                                std::to_string(features_) + "(, H, W)], got " +
                                shape.to_string());
  }
  const std::size_t group = input.size() / features_;  // N or N*H*W
  if (training && group < 2) {
    throw std::invalid_argument("BatchNorm::forward: training needs >= 2 values per feature");
  }

  std::vector<float> mean(features_, 0.0F);
  std::vector<float> var(features_, 0.0F);
  if (training) {
    std::vector<double> sum(features_, 0.0);
    std::vector<double> sum_sq(features_, 0.0);
    for (std::size_t i = 0; i < input.size(); ++i) {
      const std::size_t f = feature_of(shape, i);
      sum[f] += input[i];
      sum_sq[f] += static_cast<double>(input[i]) * input[i];
    }
    for (std::size_t f = 0; f < features_; ++f) {
      const double mu = sum[f] / static_cast<double>(group);
      const double v = sum_sq[f] / static_cast<double>(group) - mu * mu;
      mean[f] = static_cast<float>(mu);
      var[f] = static_cast<float>(std::max(v, 0.0));
      running_mean_[f] = (1.0F - momentum_) * running_mean_[f] + momentum_ * mean[f];
      running_var_[f] = (1.0F - momentum_) * running_var_[f] + momentum_ * var[f];
    }
  } else {
    for (std::size_t f = 0; f < features_; ++f) {
      mean[f] = running_mean_[f];
      var[f] = running_var_[f];
    }
  }

  std::vector<float> inv_std(features_);
  for (std::size_t f = 0; f < features_; ++f) {
    inv_std[f] = 1.0F / std::sqrt(var[f] + epsilon_);
  }

  Tensor output(shape);
  Tensor x_hat(shape);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::size_t f = feature_of(shape, i);
    x_hat[i] = (input[i] - mean[f]) * inv_std[f];
    output[i] = gamma_[f] * x_hat[i] + beta_[f];
  }
  if (training) {
    x_hat_ = std::move(x_hat);
    batch_inv_std_ = std::move(inv_std);
    group_size_ = group;
  }
  return output;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  assert(!x_hat_.empty() && "backward() requires a training forward()");
  const Shape& shape = x_hat_.shape();
  assert(grad_output.shape() == shape);
  const auto group = static_cast<float>(group_size_);

  // Per-feature reductions: sum(dy) and sum(dy * x_hat).
  std::vector<double> sum_dy(features_, 0.0);
  std::vector<double> sum_dy_xhat(features_, 0.0);
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    const std::size_t f = feature_of(shape, i);
    sum_dy[f] += grad_output[i];
    sum_dy_xhat[f] += static_cast<double>(grad_output[i]) * x_hat_[i];
    grad_beta_[f] += grad_output[i];
    grad_gamma_[f] += grad_output[i] * x_hat_[i];
  }

  // dL/dx = gamma * inv_std / m * (m*dy - sum(dy) - x_hat * sum(dy*x_hat)).
  Tensor grad_input(shape);
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    const std::size_t f = feature_of(shape, i);
    const float scale = gamma_[f] * batch_inv_std_[f] / group;
    grad_input[i] = scale * (group * grad_output[i] -
                             static_cast<float>(sum_dy[f]) -
                             x_hat_[i] * static_cast<float>(sum_dy_xhat[f]));
  }
  return grad_input;
}

std::vector<ParamRef> BatchNorm::params() {
  return {{gamma_.data(), grad_gamma_.data()}, {beta_.data(), grad_beta_.data()}};
}

std::string BatchNorm::name() const {
  return "BatchNorm(" + std::to_string(features_) + ")";
}

}  // namespace helcfl::nn
