// Gradient-descent optimizers over a model's ParamRefs.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace helcfl::nn {

/// Plain SGD with optional momentum and L2 weight decay.
///
/// With momentum = 0 and weight_decay = 0 this is exactly the gradient
/// descent step of the paper's Eq. (3): w <- w - lr * grad.
class Sgd {
 public:
  struct Options {
    float learning_rate = 0.01F;
    float momentum = 0.0F;
    float weight_decay = 0.0F;
  };

  explicit Sgd(Options options) : options_(options) {}

  /// Applies one update step to `params`.  Momentum buffers are keyed by
  /// position, so the same parameter list must be passed on every call.
  void step(const std::vector<ParamRef>& params);

  /// Drops momentum state; call when the underlying weights are replaced
  /// wholesale (e.g. after receiving a new global FL model).
  void reset_state();

  const Options& options() const { return options_; }
  void set_learning_rate(float lr) { options_.learning_rate = lr; }

 private:
  Options options_;
  std::vector<std::vector<float>> velocity_;  // one buffer per param tensor
};

/// Adam (Kingma & Ba, 2015) with decoupled L2 weight decay.
class Adam {
 public:
  struct Options {
    float learning_rate = 1e-3F;
    float beta1 = 0.9F;
    float beta2 = 0.999F;
    float epsilon = 1e-8F;
    float weight_decay = 0.0F;
  };

  explicit Adam(Options options);

  /// Applies one update step; the same parameter list must be passed on
  /// every call (moment buffers are keyed by position).
  void step(const std::vector<ParamRef>& params);

  /// Drops the moment estimates and the step counter.
  void reset_state();

  const Options& options() const { return options_; }

 private:
  Options options_;
  std::size_t step_count_ = 0;
  std::vector<std::vector<float>> first_moment_;
  std::vector<std::vector<float>> second_moment_;
};

/// Learning-rate schedules mapping a 0-based step index to a rate.
namespace schedule {

/// base for every step.
double constant(double base, std::size_t step);

/// base * gamma^(step / every): staircase decay.
double step_decay(double base, double gamma, std::size_t every, std::size_t step);

/// Cosine annealing from base to floor over total_steps, then floor.
double cosine(double base, double floor, std::size_t total_steps, std::size_t step);

}  // namespace schedule

}  // namespace helcfl::nn
