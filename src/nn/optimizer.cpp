#include "nn/optimizer.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace helcfl::nn {

void Sgd::step(const std::vector<ParamRef>& params) {
  const bool use_momentum = options_.momentum != 0.0F;
  if (use_momentum) {
    if (velocity_.empty()) {
      velocity_.resize(params.size());
      for (std::size_t i = 0; i < params.size(); ++i) {
        velocity_[i].assign(params[i].value.size(), 0.0F);
      }
    } else if (velocity_.size() != params.size()) {
      throw std::invalid_argument("Sgd::step: parameter list changed size");
    }
  }

  for (std::size_t i = 0; i < params.size(); ++i) {
    auto value = params[i].value;
    auto grad = params[i].grad;
    assert(value.size() == grad.size());
    for (std::size_t j = 0; j < value.size(); ++j) {
      float g = grad[j] + options_.weight_decay * value[j];
      if (use_momentum) {
        auto& v = velocity_[i];
        assert(v.size() == value.size());
        v[j] = options_.momentum * v[j] + g;
        g = v[j];
      }
      value[j] -= options_.learning_rate * g;
    }
  }
  // The step rewrote parameter storage behind the owning layers' backs;
  // invalidate their prepacked weight panels (nn/layer.h contract).
  for (const auto& p : params) {
    if (p.owner != nullptr) p.owner->mark_weights_dirty();
  }
}

void Sgd::reset_state() { velocity_.clear(); }

Adam::Adam(Options options) : options_(options) {
  if (options.beta1 < 0.0F || options.beta1 >= 1.0F || options.beta2 < 0.0F ||
      options.beta2 >= 1.0F) {
    throw std::invalid_argument("Adam: betas must be in [0, 1)");
  }
  if (options.epsilon <= 0.0F) {
    throw std::invalid_argument("Adam: epsilon must be positive");
  }
}

void Adam::step(const std::vector<ParamRef>& params) {
  if (first_moment_.empty()) {
    first_moment_.resize(params.size());
    second_moment_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      first_moment_[i].assign(params[i].value.size(), 0.0F);
      second_moment_[i].assign(params[i].value.size(), 0.0F);
    }
  } else if (first_moment_.size() != params.size()) {
    throw std::invalid_argument("Adam::step: parameter list changed size");
  }

  ++step_count_;
  const double bias1 = 1.0 - std::pow(options_.beta1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(options_.beta2, static_cast<double>(step_count_));

  for (std::size_t i = 0; i < params.size(); ++i) {
    auto value = params[i].value;
    auto grad = params[i].grad;
    auto& m = first_moment_[i];
    auto& v = second_moment_[i];
    assert(value.size() == grad.size() && value.size() == m.size());
    for (std::size_t j = 0; j < value.size(); ++j) {
      const float g = grad[j] + options_.weight_decay * value[j];
      m[j] = options_.beta1 * m[j] + (1.0F - options_.beta1) * g;
      v[j] = options_.beta2 * v[j] + (1.0F - options_.beta2) * g * g;
      const double m_hat = static_cast<double>(m[j]) / bias1;
      const double v_hat = static_cast<double>(v[j]) / bias2;
      value[j] -= static_cast<float>(options_.learning_rate * m_hat /
                                     (std::sqrt(v_hat) + options_.epsilon));
    }
  }
  for (const auto& p : params) {
    if (p.owner != nullptr) p.owner->mark_weights_dirty();
  }
}

void Adam::reset_state() {
  first_moment_.clear();
  second_moment_.clear();
  step_count_ = 0;
}

namespace schedule {

double constant(double base, std::size_t /*step*/) { return base; }

double step_decay(double base, double gamma, std::size_t every, std::size_t step) {
  if (every == 0) throw std::invalid_argument("step_decay: every must be > 0");
  return base * std::pow(gamma, static_cast<double>(step / every));
}

double cosine(double base, double floor, std::size_t total_steps, std::size_t step) {
  if (total_steps == 0) throw std::invalid_argument("cosine: total_steps must be > 0");
  if (step >= total_steps) return floor;
  const double progress = static_cast<double>(step) / static_cast<double>(total_steps);
  return floor + 0.5 * (base - floor) * (1.0 + std::cos(progress * 3.14159265358979));
}

}  // namespace schedule

}  // namespace helcfl::nn
