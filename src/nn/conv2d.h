// 2-D convolution over NCHW activations (direct algorithm).
#pragma once

#include <cstddef>

#include "nn/layer.h"

namespace helcfl::util {
class Rng;
}

namespace helcfl::nn {

/// Convolution layer.  Input [N, in_ch, H, W]; weight
/// [out_ch, in_ch, k, k]; output [N, out_ch, H_out, W_out] with
/// H_out = (H + 2*pad - k) / stride + 1.
class Conv2D : public Layer {
 public:
  /// He-initializes the kernel with `rng`; bias starts at zero.
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_size,
         std::size_t stride, std::size_t padding, util::Rng& rng);
  Conv2D(const Conv2D& other);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override;

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel_size() const { return kernel_; }

  /// Output spatial size for an input extent (height or width).
  std::size_t output_extent(std::size_t input_extent) const;

 private:
  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  tensor::Tensor weight_;       // [out, in, k, k]
  tensor::Tensor bias_;         // [out]
  tensor::Tensor grad_weight_;
  tensor::Tensor grad_bias_;
  tensor::Tensor cached_input_;
};

}  // namespace helcfl::nn
