// 2-D convolution over NCHW activations (im2col + GEMM algorithm).
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layer.h"
#include "tensor/ops.h"

namespace helcfl::util {
class Rng;
}

namespace helcfl::nn {

/// Convolution layer.  Input [N, in_ch, H, W]; weight
/// [out_ch, in_ch, k, k]; output [N, out_ch, H_out, W_out] with
/// H_out = (H + 2*pad - k) / stride + 1.
///
/// Forward and backward lower each sample to GEMM (docs/KERNELS.md): the
/// receptive fields are unrolled into a column matrix [in_ch*k*k,
/// H_out*W_out] (im2col), the weight acts as [out_ch, in_ch*k*k], and the
/// bias is fused into the GEMM store pass.  The column scratch is cached
/// per layer and sized to the last shape, so steady-state forwards and
/// backwards allocate nothing beyond their output tensors.
class Conv2D : public Layer {
 public:
  /// He-initializes the kernel with `rng`; bias starts at zero.
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_size,
         std::size_t stride, std::size_t padding, util::Rng& rng);
  Conv2D(const Conv2D& other);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  void mark_weights_dirty() override { packed_.invalidate(); }
  std::string name() const override;

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel_size() const { return kernel_; }

  /// Output spatial size for an input extent (height or width).
  std::size_t output_extent(std::size_t input_extent) const;

 private:
  /// Unrolls one input sample [in_ch, h_in, w_in] into columns
  /// [in_ch*k*k, h_out*w_out]; out-of-image (padding) taps become zeros.
  void im2col(const float* src, std::size_t h_in, std::size_t w_in,
              std::size_t h_out, std::size_t w_out, float* dst) const;

  /// Adjoint of im2col: accumulates columns back into one gradient sample
  /// [in_ch, h_in, w_in] (which must be zero-initialized by the caller for
  /// the first accumulation).
  void col2im(const float* src, std::size_t h_in, std::size_t w_in,
              std::size_t h_out, std::size_t w_out, float* dst) const;

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  tensor::Tensor weight_;       // [out, in, k, k]
  tensor::Tensor bias_;         // [out]
  tensor::Tensor grad_weight_;
  tensor::Tensor grad_bias_;
  tensor::Tensor cached_input_;
  // Per-layer scratch, grown to the largest shape seen and then reused
  // (tensor::scratch_realloc_count() audits steady-state behaviour).
  std::vector<float> col_;       // im2col panel [in*k*k, h_out*w_out]
  std::vector<float> col_grad_;  // backward column gradients, same extent
  // Weight panels [out_ch, in*k*k] in the kernel's layout, repacked lazily
  // after every weight mutation (Layer::mark_weights_dirty) and reused
  // across samples, batches, and clients.
  tensor::PackedWeights packed_;
};

}  // namespace helcfl::nn
