// Flat (de)serialization of model parameters.
//
// FedAvg aggregates models as flat weight vectors; these helpers move
// parameters between a live model and a std::vector<float> in a fixed,
// deterministic order (layer order, then tensor order within the layer).
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layer.h"

namespace helcfl::nn {

/// Total number of trainable scalars reachable from `model`.
std::size_t parameter_count(Layer& model);

/// Copies all parameters into one flat vector.
std::vector<float> extract_parameters(Layer& model);

/// Overwrites all parameters from `flat`.  Throws std::invalid_argument if
/// the size does not match parameter_count(model).
void load_parameters(Layer& model, std::span<const float> flat);

/// Copies all parameter *gradients* into one flat vector (same order).
std::vector<float> extract_gradients(Layer& model);

/// Size of the serialized model in bits assuming float32 parameters; this
/// is the C_model of the paper's Eq. (7).
std::size_t model_size_bits(Layer& model);

/// Total number of persistent non-trainable scalars (Layer::state_buffers),
/// e.g. BatchNorm running statistics.  0 for stateless-training models.
std::size_t state_count(Layer& model);

/// Copies all persistent state into one flat vector (layer order, then
/// buffer order within the layer — the same fixed walk as parameters).
std::vector<float> extract_state(Layer& model);

/// Overwrites all persistent state from `flat`.  Throws std::invalid_argument
/// if the size does not match state_count(model).  The parallel trainer uses
/// extract/load_state to give every client the same round-start state no
/// matter which worker thread it runs on.
void load_state(Layer& model, std::span<const float> flat);

}  // namespace helcfl::nn
