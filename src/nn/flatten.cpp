#include "nn/flatten.h"

#include <stdexcept>

namespace helcfl::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor Flatten::forward(const Tensor& input, bool training) {
  if (input.shape().rank() < 2) {
    throw std::invalid_argument("Flatten::forward: rank must be >= 2, got " +
                                input.shape().to_string());
  }
  if (training) input_shape_ = input.shape();
  const std::size_t batch = input.shape()[0];
  const std::size_t features = input.size() / batch;
  return input.reshaped(Shape{batch, features});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(input_shape_);
}

}  // namespace helcfl::nn
